package simclock

import (
	"sync"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(5.5)
	c.Advance(-3) // negative ignored
	if c.Now() != 15.5 {
		t.Fatalf("Now = %g, want 15.5", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestGroupMakespanAndTotal(t *testing.T) {
	g := NewGroup(3)
	g.Clock(0).Advance(100)
	g.Clock(1).Advance(250)
	g.Clock(2).Advance(50)
	if g.Makespan() != 250 {
		t.Fatalf("Makespan = %g", g.Makespan())
	}
	if g.Total() != 400 {
		t.Fatalf("Total = %g", g.Total())
	}
}

func TestPipeNoContention(t *testing.T) {
	var p Pipe
	done := p.Serve(1000, 10, 600)
	if done != 1600 {
		t.Fatalf("uncontended completion = %g, want 1600", done)
	}
}

func TestPipeQueueing(t *testing.T) {
	var p Pipe
	// Two requests at the same instant: the second queues behind the
	// first's occupancy.
	d1 := p.Serve(0, 10, 600)
	d2 := p.Serve(0, 10, 600)
	if d1 != 600 {
		t.Fatalf("first = %g", d1)
	}
	if d2 != 610 {
		t.Fatalf("second = %g, want 610 (10 ns queueing)", d2)
	}
	// A request arriving after the pipe drained sees no queueing.
	d3 := p.Serve(1e6, 10, 600)
	if d3 != 1e6+600 {
		t.Fatalf("late request = %g", d3)
	}
	served, busy := p.Stats()
	if served != 3 || busy != 30 {
		t.Fatalf("stats = %d, %g", served, busy)
	}
}

func TestPipeConcurrentSafety(t *testing.T) {
	var p Pipe
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Serve(float64(j), 1, 10)
			}
		}()
	}
	wg.Wait()
	served, busy := p.Stats()
	if served != 8000 || busy != 8000 {
		t.Fatalf("stats = %d, %g", served, busy)
	}
}

func TestPipelinedBeatsExclusive(t *testing.T) {
	// The paper's Figure 6(c)/(d) contrast: with occupancy ≪ latency
	// (deep pipeline), N overlapped validations take ≈ latency + N·occ,
	// not N·latency as an exclusive validator would.
	var pipelined Pipe
	const n = 28
	var last float64
	for i := 0; i < n; i++ {
		last = pipelined.Serve(0, 5, 600)
	}
	exclusive := float64(n * 600)
	if last >= exclusive/4 {
		t.Fatalf("pipelined %g ns not ≪ exclusive %g ns", last, exclusive)
	}
}

func TestRecordDoesNotQueue(t *testing.T) {
	var p Pipe
	d1 := p.Record(0, 10, 600)
	d2 := p.Record(0, 10, 600)
	if d1 != 600 || d2 != 600 {
		t.Fatalf("Record queued: %g, %g", d1, d2)
	}
	served, busy := p.Stats()
	if served != 2 || busy != 20 {
		t.Fatalf("stats = %d, %g", served, busy)
	}
}

func TestUtilization(t *testing.T) {
	var p Pipe
	p.Record(0, 25, 600)
	p.Record(0, 25, 600)
	if got := p.Utilization(1000); got != 0.05 {
		t.Fatalf("utilization = %g", got)
	}
	if p.Utilization(0) != 0 {
		t.Fatal("zero makespan should report zero utilization")
	}
}
