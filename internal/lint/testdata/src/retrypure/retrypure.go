// Package retrypure is golden-test input for the retrypure pass.
package retrypure

import (
	"rococotm/internal/tm"
)

func impure(m tm.TM) (int, []int, map[int]bool, error) {
	count := 0
	sum := 0
	var log []int
	seen := map[int]bool{}
	err := tm.Run(m, 0, func(x tm.Txn) error {
		count++              // want `\[retrypure\] non-idempotent \+\+ on captured count`
		sum += 2             // want `\[retrypure\] non-idempotent \+= on captured sum`
		sum = sum + 1        // want `\[retrypure\] non-idempotent self-referential assignment on captured sum`
		log = append(log, 1) // want `\[retrypure\] non-idempotent append on captured log`
		seen[1] = true       // want `\[retrypure\] non-idempotent map insert on captured seen`
		return nil
	})
	return count + sum, log, seen, err
}

// resetAtTop must stay silent: every captured location is re-initialized
// at the top of the closure, so a retry starts from fresh state.
func resetAtTop(m tm.TM) (int, []int, map[int]bool, error) {
	sum := 0
	var log []int
	seen := map[int]bool{}
	err := tm.Run(m, 0, func(x tm.Txn) error {
		sum = 0
		log = log[:0]
		seen = map[int]bool{}
		sum += 2
		log = append(log, sum)
		seen[sum] = true
		return nil
	})
	return sum, log, seen, err
}

// localState must stay silent: state declared inside the closure is
// rebuilt from scratch on every attempt.
func localState(m tm.TM) error {
	return tm.Run(m, 0, func(x tm.Txn) error {
		count := 0
		var log []int
		for i := 0; i < 4; i++ {
			count++
			log = append(log, i)
		}
		_ = log
		return nil
	})
}

// suppressed demonstrates the ignore directive: the update is deliberate
// (counting attempts), so the finding is silenced with a reason.
func suppressed(m tm.TM) (int, error) {
	attempts := 0
	err := tm.Run(m, 0, func(x tm.Txn) error {
		//lint:ignore tmlint/retrypure counting attempts is deliberate here
		attempts++
		return nil
	})
	return attempts, err
}

// missingReason is a malformed directive: suppressing without a reason is
// itself reported, and the finding it tried to hide survives.
func missingReason(m tm.TM) (int, error) {
	n := 0
	err := tm.Run(m, 0, func(x tm.Txn) error {
		// want `\[ignore\] lint:ignore tmlint/retrypure directive is missing a reason`
		//lint:ignore tmlint/retrypure
		n++ // want `\[retrypure\] non-idempotent \+\+ on captured n`
		return nil
	})
	return n, err
}
