// Package fault is a deterministic fault-injection layer for the
// host↔engine link. It wraps a rococotm.Link (normally the *fpga.Engine
// itself) and perturbs traffic according to a seeded Schedule: verdicts
// are delayed, dropped, duplicated or reordered; admission stalls to model
// a backed-up pull queue; and the whole engine crashes and refuses
// restarts for a configured outage window, losing its sliding-window
// state — exactly the failure surface a PCIe/CCI-attached accelerator
// exposes to the host runtime.
//
// All randomized decisions come from one seeded source and are drawn in
// request-arrival order under a mutex, so a single-threaded request
// stream replays identically for the same seed. (With concurrent
// committers the arrival interleaving itself varies, but the decision
// sequence — which of the first N submissions are dropped, delayed, etc.
// — is still a pure function of the seed, which is what the chaos-test
// seed matrix in chaos_test.go pins down.)
//
// The layer never violates the link's liveness contract on its own
// authority beyond what the schedule says: every verdict the inner engine
// produces is consumed, and a non-dropped verdict is always forwarded to
// the caller's verdict sink — slot or buffered reply channel — through
// Request.Deliver, whose at-most-once semantics absorb duplicates and
// late deliveries exactly like the engine-side protocol.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rococotm/internal/fpga"
	"rococotm/internal/rococotm"
)

// Schedule describes one fault scenario. Probabilities are in [0,1] and
// evaluated independently per submission; zero values disable the
// corresponding fault, so the zero Schedule is a transparent wrapper.
type Schedule struct {
	// Seed drives every randomized decision. Same seed, same decision
	// sequence.
	Seed int64

	// DelayProb delays a verdict's delivery by a uniform duration in
	// [DelayMin, DelayMax] — the slow-link / congested-DMA model.
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration

	// DropProb loses a verdict entirely: the engine processed (and may
	// have committed!) the request, but the host never hears. This is the
	// nastiest fault — it leaves a hole in the commit order that only the
	// runtime's degradation machinery can clear.
	DropProb float64

	// DuplicateProb delivers a verdict twice — the at-least-once DMA
	// completion model. The runtime must consume exactly one.
	DuplicateProb float64

	// ReorderProb holds a verdict back until the next verdict (any
	// request's) is delivered, then releases it — adjacent-completion
	// reordering. A held verdict is also released on crash and Close.
	ReorderProb float64

	// StallEvery > 0 stalls admission (TrySubmit returns fpga.ErrFull)
	// for StallFor after every StallEvery-th submission — the pull queue
	// backpressure model.
	StallEvery int
	StallFor   time.Duration

	// StallBurstEvery > 0 rejects the next StallBurstLen admission
	// attempts with fpga.ErrFull after every StallBurstEvery-th accepted
	// submission — a correlated run of rejections rather than a timed
	// window. This models the burst shape real pull queues exhibit when a
	// DMA batch lands: every submitter that races the full ring bounces,
	// however fast they arrive, which is exactly the signal shape an
	// admission controller must ride out without collapsing its limit.
	// Both fields must be set together.
	StallBurstEvery int
	StallBurstLen   int

	// CrashAfter > 0 crashes the engine at the CrashAfter-th submission:
	// outstanding requests get terminal verdicts, window state is lost,
	// and Restart is refused until DownFor has elapsed. CrashRepeat
	// re-arms the countdown after each successful restart, producing
	// repeated outages.
	CrashAfter  int
	DownFor     time.Duration
	CrashRepeat bool
}

// Stats counts injected faults.
type Stats struct {
	Submits         uint64 // submissions offered to the inner link
	Rejected        uint64 // submissions refused (stall or engine down)
	Delayed         uint64
	Dropped         uint64
	Duplicated      uint64
	Reordered       uint64
	Stalls          uint64 // stall windows opened
	Bursts          uint64 // rejection bursts opened
	Crashes         uint64 // injected engine crashes
	Restarts        uint64 // restarts allowed through
	RestartsRefused uint64 // restarts refused during an outage window
}

// Link wraps an inner link with fault injection. It implements
// rococotm.Link.
type Link struct {
	inner rococotm.Link
	sched Schedule

	mu         sync.Mutex
	rng        *rand.Rand
	submits    int
	crashAt    int // next submission index that triggers a crash; 0 = armed off
	burstLeft  int // remaining rejections in an open stall burst
	stallUntil time.Time
	downUntil  time.Time
	held       *heldVerdict // verdict parked by a reorder fault

	wg sync.WaitGroup // deliver goroutines

	nSubmits, nRejected, nDelayed, nDropped    atomic.Uint64
	nDuplicated, nReordered, nStalls, nCrashes atomic.Uint64
	nBursts                                    atomic.Uint64
	nRestarts, nRestartsRefused                atomic.Uint64
}

type heldVerdict struct {
	v   fpga.Verdict
	req fpga.Request // original request, carrying the caller's sink
}

// fate is the per-submission fault decision, drawn under the mutex so the
// decision sequence is deterministic in arrival order.
type fate struct {
	drop, duplicate, reorder bool
	delay                    time.Duration
}

// Validate rejects schedules that would silently misbehave: probabilities
// outside [0,1], negative durations or counters, an inverted delay range,
// or a negative seed (the chaos seed matrices are non-negative by
// convention, and a schedule that cannot be replayed from its printed seed
// is a debugging dead end).
func (s *Schedule) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DelayProb", s.DelayProb},
		{"DropProb", s.DropProb},
		{"DuplicateProb", s.DuplicateProb},
		{"ReorderProb", s.ReorderProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if s.Seed < 0 {
		return fmt.Errorf("fault: Seed = %d is negative", s.Seed)
	}
	if s.DelayMin < 0 || s.DelayMax < 0 || s.DelayMax < s.DelayMin {
		return fmt.Errorf("fault: delay range [%v, %v] invalid", s.DelayMin, s.DelayMax)
	}
	if s.StallEvery < 0 || s.StallFor < 0 {
		return fmt.Errorf("fault: stall config (%d, %v) negative", s.StallEvery, s.StallFor)
	}
	if s.StallBurstEvery < 0 || s.StallBurstLen < 0 {
		return fmt.Errorf("fault: stall burst config (%d, %d) negative", s.StallBurstEvery, s.StallBurstLen)
	}
	if (s.StallBurstEvery > 0) != (s.StallBurstLen > 0) {
		return fmt.Errorf("fault: StallBurstEvery (%d) and StallBurstLen (%d) must be set together",
			s.StallBurstEvery, s.StallBurstLen)
	}
	if s.CrashAfter < 0 || s.DownFor < 0 {
		return fmt.Errorf("fault: crash config (%d, %v) negative", s.CrashAfter, s.DownFor)
	}
	return nil
}

// Wrap builds a fault-injecting link around inner. It panics on an invalid
// schedule — a misconfigured fault scenario silently testing nothing is
// worse than a crash at construction time.
func Wrap(inner rococotm.Link, sched Schedule) *Link {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	l := &Link{
		inner: inner,
		sched: sched,
		rng:   rand.New(rand.NewSource(sched.Seed)),
	}
	if sched.CrashAfter > 0 {
		l.crashAt = sched.CrashAfter
	}
	return l
}

// Wrapper returns a rococotm.Config.WrapLink hook for sched, and a slot
// through which the caller can reach the created Link (for Stats) once
// the runtime is built.
func Wrapper(sched Schedule, out **Link) func(rococotm.Link) rococotm.Link {
	return func(inner rococotm.Link) rococotm.Link {
		l := Wrap(inner, sched)
		if out != nil {
			*out = l
		}
		return l
	}
}

// Stats returns a snapshot of the fault counters.
func (l *Link) Stats() Stats {
	return Stats{
		Submits:         l.nSubmits.Load(),
		Rejected:        l.nRejected.Load(),
		Delayed:         l.nDelayed.Load(),
		Dropped:         l.nDropped.Load(),
		Duplicated:      l.nDuplicated.Load(),
		Reordered:       l.nReordered.Load(),
		Stalls:          l.nStalls.Load(),
		Bursts:          l.nBursts.Load(),
		Crashes:         l.nCrashes.Load(),
		Restarts:        l.nRestarts.Load(),
		RestartsRefused: l.nRestartsRefused.Load(),
	}
}

// TrySubmit implements rococotm.Link: it applies admission faults, then
// forwards the request to the inner link through a proxy reply channel so
// the verdict can be perturbed on the way back.
func (l *Link) TrySubmit(r fpga.Request) error {
	l.mu.Lock()
	now := time.Now()
	if now.Before(l.stallUntil) {
		l.nRejected.Add(1)
		l.mu.Unlock()
		return fpga.ErrFull
	}
	if l.burstLeft > 0 {
		l.burstLeft--
		l.nRejected.Add(1)
		l.mu.Unlock()
		return fpga.ErrFull
	}
	l.submits++
	l.nSubmits.Add(1)
	if l.crashAt > 0 && l.submits >= l.crashAt {
		// Injected crash: this submission is the casualty that notices.
		l.crashAt = 0
		l.downUntil = now.Add(l.sched.DownFor)
		l.nCrashes.Add(1)
		l.releaseHeldLocked()
		l.mu.Unlock()
		l.inner.Crash()
		return fpga.ErrClosed
	}
	if l.sched.StallEvery > 0 && l.submits%l.sched.StallEvery == 0 {
		l.stallUntil = now.Add(l.sched.StallFor)
		l.nStalls.Add(1)
	}
	if l.sched.StallBurstEvery > 0 && l.submits%l.sched.StallBurstEvery == 0 {
		l.burstLeft = l.sched.StallBurstLen
		l.nBursts.Add(1)
	}
	f := l.drawFateLocked()
	l.mu.Unlock()

	// The inner engine answers on a proxy channel so the verdict can be
	// perturbed before it reaches the caller's real sink (slot or reply
	// channel), which stays on the original request.
	proxy := make(chan fpga.Verdict, 1)
	inner := r
	inner.Slot = nil
	inner.Gen = 0
	inner.Reply = proxy
	if err := l.inner.TrySubmit(inner); err != nil {
		return err
	}
	l.wg.Add(1)
	go l.deliver(proxy, r, f)
	return nil
}

// drawFateLocked draws the fault decision for one accepted submission.
func (l *Link) drawFateLocked() fate {
	var f fate
	s := &l.sched
	if s.DropProb > 0 && l.rng.Float64() < s.DropProb {
		f.drop = true
		return f
	}
	if s.DelayProb > 0 && l.rng.Float64() < s.DelayProb {
		f.delay = s.DelayMin
		if d := s.DelayMax - s.DelayMin; d > 0 {
			f.delay += time.Duration(l.rng.Int63n(int64(d) + 1))
		}
	}
	if s.DuplicateProb > 0 && l.rng.Float64() < s.DuplicateProb {
		f.duplicate = true
	}
	if s.ReorderProb > 0 && l.rng.Float64() < s.ReorderProb {
		f.reorder = true
	}
	return f
}

// deliver consumes the inner verdict and forwards it (or not) per the
// fault decision. Forwarding goes through Request.Deliver: at-most-once,
// never blocking, so duplicates and late deliveries are absorbed by the
// sink's own protocol.
func (l *Link) deliver(proxy <-chan fpga.Verdict, orig fpga.Request, f fate) {
	defer l.wg.Done()
	v := <-proxy
	if f.drop {
		l.nDropped.Add(1)
		return
	}
	if f.delay > 0 {
		l.nDelayed.Add(1)
		time.Sleep(f.delay)
	}
	if f.reorder {
		l.mu.Lock()
		if l.held == nil {
			// Park this verdict; the next delivery (or a crash/Close)
			// releases it after itself.
			l.held = &heldVerdict{v: v, req: orig}
			l.nReordered.Add(1)
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
	}
	orig.Deliver(v)
	if f.duplicate {
		l.nDuplicated.Add(1)
		orig.Deliver(v)
	}
	// Release a parked verdict behind us: the pair is now observably
	// reordered.
	l.mu.Lock()
	l.releaseHeldLocked()
	l.mu.Unlock()
}

// releaseHeldLocked flushes a parked reorder verdict, if any.
func (l *Link) releaseHeldLocked() {
	if l.held != nil {
		l.held.req.Deliver(l.held.v)
		l.held = nil
	}
}

// Restart implements rococotm.Link, refusing while the injected outage
// window is open.
func (l *Link) Restart(next uint64) error {
	l.mu.Lock()
	if time.Now().Before(l.downUntil) {
		l.mu.Unlock()
		l.nRestartsRefused.Add(1)
		return errors.New("fault: engine down (injected outage)")
	}
	l.releaseHeldLocked()
	l.mu.Unlock()
	if err := l.inner.Restart(next); err != nil {
		return err
	}
	l.nRestarts.Add(1)
	if l.sched.CrashRepeat && l.sched.CrashAfter > 0 {
		l.mu.Lock()
		if l.crashAt == 0 {
			// Re-arm only when disarmed: the recovery prober issues a
			// Restart every probe round plus one at promotion, and each
			// redundant call must not push the next injected crash
			// further out (or reschedule one that is still pending).
			l.crashAt = l.submits + l.sched.CrashAfter
		}
		l.mu.Unlock()
	}
	return nil
}

// Crash implements rococotm.Link.
func (l *Link) Crash() {
	l.mu.Lock()
	l.releaseHeldLocked()
	l.mu.Unlock()
	l.inner.Crash()
}

// Close implements rococotm.Link: it shuts the inner link down and joins
// every deliver goroutine (each is bounded: the inner engine guarantees a
// terminal verdict per accepted request, and delays are finite). The
// parked reorder verdict is flushed only after the join — an in-flight
// deliver can park a new verdict at any point before then, and releasing
// early would strand it forever.
func (l *Link) Close() {
	l.inner.Close()
	l.wg.Wait()
	l.mu.Lock()
	l.releaseHeldLocked()
	l.mu.Unlock()
}

var _ rococotm.Link = (*Link)(nil)
