package bench

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rococotm/internal/audit"
	"rococotm/internal/mem"
	"rococotm/internal/rococotm"
	"rococotm/internal/serve"
	"rococotm/internal/tm"
	"rococotm/internal/tmds"
)

// This file is the serving/overload experiment (`rococobench -exp serve`):
// a simulated client fleet drives a smallbank mix through the
// internal/serve front end at offered loads from half to twice the
// runtime's calibrated capacity, across fleet sizes up to six figures,
// and the report records goodput, shed fraction and the p50/p99/p999
// sojourn tail per cell. The interesting shape is the saturation knee:
// past 1× capacity an unprotected TM collapses into retry storms, while
// the admission controller holds goodput near peak by converting the
// excess into cheap sheds. The single-engine matrix runs with the
// serializability auditor observing every commit, and each cell's outcome
// accounting identity is certified.

// ServeBenchConfig parameterizes RunServeBench. Zero values take defaults.
type ServeBenchConfig struct {
	// Workers is the serve executor pool size. Default 4.
	Workers int
	// Clients are the simulated fleet sizes to sweep. Default
	// {1000, 100000}.
	Clients []int
	// LoadFactors are offered-load multiples of the calibrated capacity.
	// Default {0.5, 1, 1.5, 2}.
	LoadFactors []float64
	// Budget is the per-request deadline. Default 20ms.
	Budget time.Duration
	// Duration is the per-cell measurement window. Default 400ms.
	Duration time.Duration
	// Calibrate is the unthrottled capacity-probe duration. Default 250ms.
	Calibrate time.Duration
	// Accounts sizes the smallbank schema. Default 256.
	Accounts int
	// Seed drives the workload mix. Default 1.
	Seed int64
	// Runtimes selects the validation planes to sweep: "single" (one
	// engine, auditor-observed) and/or "sharded" (two engines). Default
	// both.
	Runtimes []string
}

func (c *ServeBenchConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1_000, 100_000}
	}
	if len(c.LoadFactors) == 0 {
		c.LoadFactors = []float64{0.5, 1, 1.5, 2}
	}
	if c.Budget <= 0 {
		c.Budget = 20 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	if c.Calibrate <= 0 {
		c.Calibrate = 250 * time.Millisecond
	}
	if c.Accounts <= 0 {
		c.Accounts = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Runtimes) == 0 {
		c.Runtimes = []string{"single", "sharded"}
	}
}

// ServeRow is one cell of the sweep.
type ServeRow struct {
	Runtime    string
	Clients    int
	Factor     float64
	OfferedPS  float64 // achieved offered load, requests/s
	GoodputPS  float64 // committed/s
	ShedPct    float64
	ExpiredPct float64
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	Tier       int // degradation tier when the window closed
	Knee       bool
}

// ServeReport is the experiment outcome.
type ServeReport struct {
	Config     ServeBenchConfig
	CapacityPS map[string]float64 // runtime → calibrated capacity
	Rows       []ServeRow
	// Errs collects certification failures: accounting identity breaks,
	// auditor violations, conservation drift, pool leaks.
	Errs []error
}

// Err returns the first certification failure, if any.
func (r *ServeReport) Err() error {
	if len(r.Errs) > 0 {
		return r.Errs[0]
	}
	return nil
}

// RunServeBench runs the overload sweep.
func RunServeBench(cfg ServeBenchConfig) (*ServeReport, error) {
	cfg.fill()
	rep := &ServeReport{Config: cfg, CapacityPS: map[string]float64{}}
	for _, rt := range cfg.Runtimes {
		if err := runServeRuntime(cfg, rt, rep); err != nil {
			return nil, err
		}
	}
	markKnees(rep.Rows)
	return rep, nil
}

// serveEnv is one runtime under test plus its workload and certification
// hooks.
type serveEnv struct {
	m       tm.TM
	bank    *tmds.SmallBank
	signals func() serve.Signal
	auditor *audit.Auditor
	// poolCheck reports live (leaked) transactions after quiescence.
	poolCheck func() int
	close     func()
}

func newServeEnv(cfg ServeBenchConfig, runtime string) (*serveEnv, error) {
	heap := mem.NewHeap(1 << 14)
	env := &serveEnv{}
	switch runtime {
	case "single":
		env.auditor = audit.New(audit.Config{})
		m := rococotm.New(heap, rococotm.Config{
			MaxThreads: cfg.Workers + 2,
			Observer:   env.auditor,
		})
		env.m = m
		env.signals = func() serve.Signal {
			fs := m.FaultStats()
			return serve.Signal{
				ErrFull:       fs.DeadlineMisses,
				EngineErrors:  fs.EngineErrors,
				WatchdogFires: m.Stats().WatchdogFires,
			}
		}
		env.poolCheck = func() int { live, _ := m.PoolCheck(); return live }
		env.close = m.Close
	case "sharded":
		m := rococotm.NewSharded(heap, rococotm.ShardedConfig{
			Shards:     2,
			MaxThreads: cfg.Workers + 2,
			Shard:      rococotm.Config{MaxThreads: cfg.Workers + 2},
		})
		env.m = m
		env.signals = func() serve.Signal {
			return serve.Signal{WatchdogFires: m.Stats().WatchdogFires}
		}
		env.poolCheck = func() int { live, _ := m.PoolCheck(); return live }
		env.close = m.Close
	default:
		return nil, fmt.Errorf("bench: unknown serve runtime %q", runtime)
	}
	bank, err := tmds.NewSmallBank(heap, cfg.Accounts, 10_000)
	if err != nil {
		env.close()
		return nil, err
	}
	env.bank = bank
	return env, nil
}

func runServeRuntime(cfg ServeBenchConfig, runtime string, rep *ServeReport) error {
	env, err := newServeEnv(cfg, runtime)
	if err != nil {
		return err
	}
	defer env.close()

	// Best-of-2 calibration: capacity anchors every cell's offered rate,
	// so a transiently slow probe would mislabel the whole sweep.
	capacity := calibrateServe(cfg, env)
	if c2 := calibrateServe(cfg, env); c2 > capacity {
		capacity = c2
	}
	if capacity <= 0 {
		return fmt.Errorf("bench: serve calibration on %s measured zero capacity", runtime)
	}
	rep.CapacityPS[runtime] = capacity

	// Two full passes over the matrix, merged per cell by best goodput —
	// the regression gate's best-of-N logic, but interleaved so the two
	// attempts of any one cell are separated by a whole pass: transient
	// machine load comes in multi-second windows, and back-to-back
	// attempts would both land inside one. Certification must hold on
	// every attempt, so errors from both passes are kept.
	best := map[[2]int]ServeRow{}
	for attempt := 0; attempt < 2; attempt++ {
		for ci, clients := range cfg.Clients {
			for fi, factor := range cfg.LoadFactors {
				// Collect the previous phase's garbage outside the
				// measurement window: a GC cycle landing mid-cell on a
				// small machine reads as a phantom capacity loss.
				goruntime.GC()
				row, errs := runServeCell(cfg, env, runtime, capacity, clients, factor)
				rep.Errs = append(rep.Errs, errs...)
				k := [2]int{ci, fi}
				if prev, ok := best[k]; !ok || row.GoodputPS > prev.GoodputPS {
					best[k] = row
				}
			}
		}
	}
	for ci := range cfg.Clients {
		for fi := range cfg.LoadFactors {
			rep.Rows = append(rep.Rows, best[[2]int{ci, fi}])
		}
	}

	// Post-sweep certification: workload invariant, history auditor, pool.
	if err := tm.Run(env.m, cfg.Workers+1, env.bank.CheckConservation); err != nil {
		rep.Errs = append(rep.Errs, fmt.Errorf("%s: %w", runtime, err))
	}
	if env.auditor != nil {
		if err := env.auditor.Err(); err != nil {
			rep.Errs = append(rep.Errs, fmt.Errorf("%s auditor: %w", runtime, err))
		}
	}
	if live := env.poolCheck(); live != 0 {
		rep.Errs = append(rep.Errs, fmt.Errorf("%s: %d live txns leaked", runtime, live))
	}
	return nil
}

// calibrateServe measures the runtime's commit capacity through the serve
// front end with admission wide open: closed-loop drivers, long budgets,
// no pacing.
func calibrateServe(cfg ServeBenchConfig, env *serveEnv) float64 {
	s := serve.New(env.m, serve.Config{
		Workers:       cfg.Workers,
		MaxInflight:   64 * cfg.Workers,
		DefaultBudget: time.Minute,
		TargetP99:     time.Minute, // never throttle during calibration
	})
	var stop atomic.Bool
	var wg sync.WaitGroup
	drivers := 2 * cfg.Workers
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	for d := 0; d < drivers; d++ {
		seed := rng.Int63()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				s.Do(smallbankRequest(env.bank, cfg.Accounts, drng, serve.High))
			}
		}(seed)
	}
	time.Sleep(cfg.Calibrate)
	stop.Store(true)
	wg.Wait()
	s.Close()
	elapsed := time.Since(start).Seconds()
	return float64(s.Stats().Committed) / elapsed
}

// smallbankRequest draws one request from the serving mix: mostly Normal
// writes, a read-heavy Batch tail and a latency-critical High slice.
func smallbankRequest(b *tmds.SmallBank, accounts int, rng *rand.Rand, forceClass serve.Class) serve.Request {
	from := rng.Intn(accounts)
	to := rng.Intn(accounts)
	amt := mem.Word(rng.Intn(50) + 1)
	class := forceClass
	if forceClass == serve.Class(-1) {
		switch p := rng.Intn(10); {
		case p == 0:
			class = serve.High
		case p <= 2:
			class = serve.Batch
		default:
			class = serve.Normal
		}
	}
	op := rng.Intn(6)
	if class == serve.Batch || op == 5 {
		// Read-only balance probe: eligible for snapshot demotion.
		return serve.Request{Class: class, ReadOnly: true, Fn: func(x tm.Txn) error {
			_, err := b.Balance(x, from)
			return err
		}}
	}
	return serve.Request{Class: class, Fn: func(x tm.Txn) error {
		switch op {
		case 0:
			return b.DepositChecking(x, from, amt)
		case 1:
			return b.TransactSavings(x, from, amt)
		case 2:
			return b.WriteCheck(x, from, amt)
		case 3:
			return b.SendPayment(x, from, to, amt)
		default:
			return b.Amalgamate(x, from, to)
		}
	}}
}

// anyClass asks smallbankRequest to draw the class from the mix.
const anyClass = serve.Class(-1)

// runServeCell drives one (clients, factor) cell: a fresh server over the
// shared runtime, a paced open-loop arrival process multiplexed over a
// bounded simulator pool (each simulated client has at most one request
// outstanding, fleet-style), and a certified accounting read-out.
func runServeCell(cfg ServeBenchConfig, env *serveEnv, runtime string, capacity float64,
	clients int, factor float64) (ServeRow, []error) {
	// MaxInflight gets the same headroom as calibration: the paced arrival
	// process is bursty at sub-millisecond scale, and a tight inflight cap
	// would shed bursts that the queue could absorb well inside the
	// deadline. Overload protection comes from the deadline-aware wait
	// estimate and the AIMD controller shrinking the limit under real
	// pressure, not from an artificially small static cap.
	s := serve.New(env.m, serve.Config{
		Workers:       cfg.Workers,
		MaxInflight:   64 * cfg.Workers,
		DefaultBudget: cfg.Budget,
		Signals:       env.signals,
	})

	// The fleet: a persistent pool of client simulators bounded well under
	// the six-figure fleet sizes (an idle simulated client costs nothing;
	// only in-flight ones need a goroutine). The pacer hands arrival
	// tokens over an unbuffered channel — a send succeeds only while some
	// simulator is idle, so each simulated client has at most one request
	// outstanding and arrivals that find the whole fleet busy are absorbed
	// by client-side queueing, never offered to the server. Persistent
	// simulators instead of a goroutine per arrival keep the generator's
	// own cost from starving the serve workers at six-figure offered
	// rates.
	// The pool bound approximates an unsaturated fleet: outstanding
	// admitted work is capped by the server's inflight limit, so beyond
	// ~1k simulators a larger fleet differs only in per-client rate —
	// six-figure fleets never self-throttle, which the bounded pool
	// reproduces as long as idle simulators remain available.
	nSim := minInt(clients, 1024)
	arrivals := make(chan struct{})
	var offered atomic.Uint64
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(cfg.Seed + int64(clients) + int64(factor*1000)))
	for i := 0; i < nSim; i++ {
		seed := rng.Int63()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed))
			for range arrivals {
				offered.Add(1)
				s.Do(smallbankRequest(env.bank, cfg.Accounts, srng, anyClass))
			}
		}(seed)
	}
	rate := capacity * factor // target offered load, requests/s

	const tick = 500 * time.Microsecond
	timer := time.NewTicker(tick)
	defer timer.Stop()
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	sent := 0
	for time.Now().Before(deadline) {
		<-timer.C
		// Arrivals due is computed from wall-clock elapsed time, not tick
		// counts: ticker ticks coalesce under load, and counting them
		// would silently under-deliver the offered rate.
		due := int(rate * time.Since(start).Seconds())
		for ; sent < due; sent++ {
			select {
			case arrivals <- struct{}{}:
			default: // whole fleet busy: absorbed client-side
			}
		}
	}
	close(arrivals)
	wg.Wait()
	tier := s.Tier()
	s.Close()
	elapsed := time.Since(start).Seconds()

	st := s.Stats()
	lat := s.Latency()
	row := ServeRow{
		Runtime:   runtime,
		Clients:   clients,
		Factor:    factor,
		OfferedPS: float64(st.Offered) / elapsed,
		GoodputPS: float64(st.Committed) / elapsed,
		P50:       lat.P50(),
		P99:       lat.P99(),
		P999:      lat.P999(),
		Tier:      tier,
	}
	if st.Offered > 0 {
		row.ShedPct = 100 * float64(st.Shed) / float64(st.Offered)
		row.ExpiredPct = 100 * float64(st.Expired) / float64(st.Offered)
	}
	var errs []error
	if err := st.CheckAccounting(); err != nil {
		errs = append(errs, fmt.Errorf("%s c=%d f=%.1f: %w", runtime, clients, factor, err))
	}
	if sent := offered.Load(); st.Offered != sent {
		errs = append(errs, fmt.Errorf("%s c=%d f=%.1f: server saw %d offers, fleet sent %d",
			runtime, clients, factor, st.Offered, sent))
	}
	return row, errs
}

// markKnees flags, per (runtime, clients) group, the lowest load factor
// whose goodput is within 2% of the group's peak — the saturation knee
// the EXPERIMENTS.md table calls out.
func markKnees(rows []ServeRow) {
	type key struct {
		rt string
		c  int
	}
	peak := map[key]float64{}
	for _, r := range rows {
		k := key{r.Runtime, r.Clients}
		if r.GoodputPS > peak[k] {
			peak[k] = r.GoodputPS
		}
	}
	seen := map[key]bool{}
	for i := range rows {
		k := key{rows[i].Runtime, rows[i].Clients}
		if !seen[k] && rows[i].GoodputPS >= 0.98*peak[k] {
			rows[i].Knee = true
			seen[k] = true
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the sweep table.
func (r *ServeReport) String() string {
	var sb strings.Builder
	sb.WriteString("TM-as-a-service overload sweep (smallbank mix; goodput vs offered load)\n")
	for _, rt := range r.Config.Runtimes {
		if c, ok := r.CapacityPS[rt]; ok {
			fmt.Fprintf(&sb, "  %s calibrated capacity: %.0f txn/s (workers=%d, budget=%v)\n",
				rt, c, r.Config.Workers, r.Config.Budget)
		}
	}
	fmt.Fprintf(&sb, "%-8s %8s %6s %11s %11s %6s %6s %10s %10s %10s %5s\n",
		"runtime", "clients", "load", "offered/s", "goodput/s", "shed%", "exp%", "p50", "p99", "p999", "tier")
	for _, row := range r.Rows {
		knee := ""
		if row.Knee {
			knee = " <- knee"
		}
		fmt.Fprintf(&sb, "%-8s %8d %5.1fx %11.0f %11.0f %5.1f%% %5.1f%% %10v %10v %10v %5d%s\n",
			row.Runtime, row.Clients, row.Factor, row.OfferedPS, row.GoodputPS,
			row.ShedPct, row.ExpiredPct, row.P50, row.P99, row.P999, row.Tier, knee)
	}
	if len(r.Errs) == 0 {
		sb.WriteString("certification: accounting identity, conservation, auditor, pool — all clean\n")
	} else {
		for _, err := range r.Errs {
			fmt.Fprintf(&sb, "CERTIFICATION FAILURE: %v\n", err)
		}
	}
	return sb.String()
}

// measureServeP99Us is the regression-gate probe: the p99 sojourn of a
// light closed-loop load through the serve front end, in microseconds.
// Light load keeps the number a measure of the serving stack's overhead
// (admission, queue hand-off, histogram) rather than of queueing delay.
func measureServeP99Us() (float64, error) {
	best := 0.0
	for run := 0; run < 3; run++ {
		heap := mem.NewHeap(1 << 12)
		m := rococotm.New(heap, rococotm.Config{MaxThreads: 6})
		bank, err := tmds.NewSmallBank(heap, 64, 10_000)
		if err != nil {
			m.Close()
			return 0, err
		}
		s := serve.New(m, serve.Config{Workers: 4, DefaultBudget: time.Second})
		var wg sync.WaitGroup
		for d := 0; d < 2; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(d) + 5))
				for i := 0; i < 400; i++ {
					s.Do(smallbankRequest(bank, 64, rng, serve.High))
				}
			}(d)
		}
		wg.Wait()
		s.Close()
		p99 := float64(s.Latency().P99()) / 1e3
		m.Close()
		if err := s.Stats().CheckAccounting(); err != nil {
			return 0, err
		}
		if best == 0 || p99 < best {
			best = p99
		}
	}
	return best, nil
}
