//go:build !race

// Steady-state allocation tests for the commit hot path. Excluded from
// race builds: the race runtime instruments allocations and makes
// AllocsPerRun meaningless there (the CI race lane still runs every
// functional test in this package).
package rococotm

import (
	"testing"
	"time"

	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// runAllocProbe measures the warmed Begin/Read/Write/Commit cycle on the
// given runtime and fails if it allocates.
func runAllocProbe(t *testing.T, m *TM) {
	t.Helper()
	a := m.Heap().MustAlloc(4)
	b := m.Heap().MustAlloc(4)
	cycle := func() {
		x, err := m.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		v, err := x.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := x.Write(b, v+1); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(x); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: first iterations grow the redo map, sub-signature spares, the
	// address scratch slices and the engine's batch buffers.
	for i := 0; i < 128; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("commit cycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestCommitPathZeroAllocs pins the headline CPU-side guarantee of the
// batched transport: a warmed single-thread read-modify-write transaction
// commits through the engine with zero heap allocations.
func TestCommitPathZeroAllocs(t *testing.T) {
	m := New(mem.NewHeap(1<<10), Config{MaxThreads: 2})
	defer m.Close()
	runAllocProbe(t, m)
}

// TestCommitPathZeroAllocsFaultTolerant: the fault-tolerant wait path
// (deadline-bounded WaitUntil, probe machinery armed) must stay
// allocation-free too — no timer or channel per validation.
func TestCommitPathZeroAllocsFaultTolerant(t *testing.T) {
	m := New(mem.NewHeap(1<<10), Config{
		MaxThreads:       2,
		ValidateDeadline: time.Second,
		ProbeInterval:    time.Hour, // keep the prober quiet during the probe
	})
	defer m.Close()
	runAllocProbe(t, m)
}

// TestReadOnlyPathZeroAllocs: read-only transactions never touch the
// engine; their whole lifecycle must be allocation-free once warm.
func TestReadOnlyPathZeroAllocs(t *testing.T) {
	m := New(mem.NewHeap(1<<10), Config{MaxThreads: 2})
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	cycle := func() {
		if err := tm.Run(m, 0, func(x tm.Txn) error {
			_, err := x.Read(a)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("read-only cycle allocates %.2f objects/op, want 0", avg)
	}
}
