//go:build secretplatform

package buildtag

func Answer() int {
	return 0
}
