// Package tmtest is a conformance kit for tm.TM implementations: every
// runtime in the repository (TinySTM, the HTM model, ROCoCoTM, the
// sequential baseline) is driven through the same atomicity, isolation,
// opacity and rollback checks. Runtime packages call these helpers from
// their own tests.
package tmtest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// Factory builds a fresh runtime and its heap for one test.
type Factory func() tm.TM

// ReadYourWrites checks that a transaction observes its own buffered
// stores before commit and that committed stores are visible afterwards.
func ReadYourWrites(t *testing.T, mk Factory) {
	t.Helper()
	m := mk()
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	err := tm.Run(m, 0, func(x tm.Txn) error {
		if err := x.Write(a, 7); err != nil {
			return err
		}
		v, err := x.Read(a)
		if err != nil {
			return err
		}
		if v != 7 {
			return fmt.Errorf("read-your-writes: got %d, want 7", v)
		}
		if err := x.Write(a, 9); err != nil {
			return err
		}
		v, err = x.Read(a)
		if err != nil {
			return err
		}
		if v != 9 {
			return fmt.Errorf("read-your-writes after overwrite: got %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Heap().Load(a); got != 9 {
		t.Fatalf("committed value = %d, want 9", got)
	}
}

// AbortRollsBack checks that a transaction failing with an application
// error leaves memory untouched.
func AbortRollsBack(t *testing.T, mk Factory) {
	t.Helper()
	m := mk()
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	m.Heap().Store(a, 42)
	sentinel := fmt.Errorf("application failure")
	err := tm.Run(m, 0, func(x tm.Txn) error {
		if err := x.Write(a, 99); err != nil {
			return err
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("Run returned %v, want sentinel", err)
	}
	if got := m.Heap().Load(a); got != 42 {
		t.Fatalf("aborted write leaked: value = %d, want 42", got)
	}
}

// CounterHammer runs `threads` goroutines each incrementing a shared
// counter `perThread` times and checks the total — the canonical
// lost-update test.
func CounterHammer(t *testing.T, mk Factory, threads, perThread int) {
	t.Helper()
	m := mk()
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				err := tm.Run(m, th, func(x tm.Txn) error {
					v, err := x.Read(a)
					if err != nil {
						return err
					}
					return x.Write(a, v+1)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := mem.Word(threads * perThread)
	if got := m.Heap().Load(a); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
}

// BankInvariant runs transfer transactions between accounts from multiple
// threads while auditor transactions continuously assert that the total
// balance is constant — checking both isolation of in-flight transfers and
// atomicity of committed ones.
func BankInvariant(t *testing.T, mk Factory, threads, accounts, transfers int) {
	t.Helper()
	m := mk()
	defer m.Close()
	const initial = 1000
	base := m.Heap().MustAlloc(accounts)
	for i := 0; i < accounts; i++ {
		m.Heap().Store(base+mem.Addr(i), initial)
	}
	total := mem.Word(accounts * initial)

	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th + 1)))
			for i := 0; i < transfers && !failed.Load(); i++ {
				if th == 0 && i%8 == 0 {
					// Auditor: read every account in one transaction.
					var sum mem.Word
					err := tm.Run(m, th, func(x tm.Txn) error {
						sum = 0
						for j := 0; j < accounts; j++ {
							v, err := x.Read(base + mem.Addr(j))
							if err != nil {
								return err
							}
							sum += v
						}
						return nil
					})
					if err != nil {
						fail("auditor: %v", err)
						return
					}
					if sum != total {
						fail("auditor saw total %d, want %d", sum, total)
						return
					}
					continue
				}
				from := mem.Addr(rng.Intn(accounts))
				to := mem.Addr(rng.Intn(accounts))
				amount := mem.Word(1 + rng.Intn(5))
				err := tm.Run(m, th, func(x tm.Txn) error {
					fv, err := x.Read(base + from)
					if err != nil {
						return err
					}
					tv, err := x.Read(base + to)
					if err != nil {
						return err
					}
					if fv < amount {
						return nil // insufficient funds; commit unchanged
					}
					if from == to {
						return nil
					}
					if err := x.Write(base+from, fv-amount); err != nil {
						return err
					}
					return x.Write(base+to, tv+amount)
				})
				if err != nil {
					fail("transfer: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
	var sum mem.Word
	for i := 0; i < accounts; i++ {
		sum += m.Heap().Load(base + mem.Addr(i))
	}
	if sum != total {
		t.Fatalf("final total = %d, want %d", sum, total)
	}
}

// OpacityProbe keeps two words equal (x == y at every commit) under
// concurrent writers while reader transactions assert they never observe
// x != y — the read-set-consistency property (§5.3 footnote).
func OpacityProbe(t *testing.T, mk Factory, threads, iters int) {
	t.Helper()
	m := mk()
	defer m.Close()
	xa := m.Heap().MustAlloc(1)
	ya := m.Heap().MustAlloc(1)

	var wg sync.WaitGroup
	var failed atomic.Bool
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < iters && !failed.Load(); i++ {
				var err error
				if th%2 == 0 {
					err = tm.Run(m, th, func(x tm.Txn) error {
						v, err := x.Read(xa)
						if err != nil {
							return err
						}
						if err := x.Write(xa, v+1); err != nil {
							return err
						}
						return x.Write(ya, v+1)
					})
				} else {
					err = tm.Run(m, th, func(x tm.Txn) error {
						vx, err := x.Read(xa)
						if err != nil {
							return err
						}
						vy, err := x.Read(ya)
						if err != nil {
							return err
						}
						if vx != vy {
							return fmt.Errorf("opacity violation: x=%d y=%d", vx, vy)
						}
						return nil
					})
				}
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						t.Errorf("thread %d: %v", th, err)
					}
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
	if vx, vy := m.Heap().Load(xa), m.Heap().Load(ya); vx != vy {
		t.Fatalf("final state x=%d y=%d", vx, vy)
	}
}

// WriteSkew checks serializability beyond snapshot isolation: two
// transactions each read both flags and write one of them; under
// serializability at most one may commit a write based on a stale read, so
// the invariant x + y ≤ 1 must hold at the end of every round.
func WriteSkew(t *testing.T, mk Factory, rounds int) {
	t.Helper()
	m := mk()
	defer m.Close()
	xa := m.Heap().MustAlloc(1)
	ya := m.Heap().MustAlloc(1)
	for r := 0; r < rounds; r++ {
		m.Heap().Store(xa, 0)
		m.Heap().Store(ya, 0)
		var wg sync.WaitGroup
		worker := func(th int, mine, other mem.Addr) {
			defer wg.Done()
			err := tm.Run(m, th, func(x tm.Txn) error {
				vm, err := x.Read(mine)
				if err != nil {
					return err
				}
				vo, err := x.Read(other)
				if err != nil {
					return err
				}
				if vm+vo == 0 {
					return x.Write(mine, 1)
				}
				return nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", th, err)
			}
		}
		wg.Add(2)
		go worker(0, xa, ya)
		go worker(1, ya, xa)
		wg.Wait()
		if vx, vy := m.Heap().Load(xa), m.Heap().Load(ya); vx+vy > 1 {
			t.Fatalf("round %d: write skew admitted: x=%d y=%d", r, vx, vy)
		}
	}
}

// DisjointParallelism checks that transactions on disjoint data all commit
// and never deadlock.
func DisjointParallelism(t *testing.T, mk Factory, threads, iters int) {
	t.Helper()
	m := mk()
	defer m.Close()
	base := m.Heap().MustAlloc(threads * 8)
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			mine := base + mem.Addr(th*8)
			for i := 0; i < iters; i++ {
				err := tm.Run(m, th, func(x tm.Txn) error {
					v, err := x.Read(mine)
					if err != nil {
						return err
					}
					return x.Write(mine, v+1)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for th := 0; th < threads; th++ {
		if got := m.Heap().Load(base + mem.Addr(th*8)); got != mem.Word(iters) {
			t.Fatalf("thread %d slot = %d, want %d", th, got, iters)
		}
	}
}

// StatsSanity checks that the runtime's counters add up after a workload.
func StatsSanity(t *testing.T, mk Factory) {
	t.Helper()
	m := mk()
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	const n = 50
	for i := 0; i < n; i++ {
		if err := tm.Run(m, 0, func(x tm.Txn) error {
			v, err := x.Read(a)
			if err != nil {
				return err
			}
			return x.Write(a, v+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Commits != n {
		t.Fatalf("commits = %d, want %d", st.Commits, n)
	}
	if st.Starts != st.Commits+st.Aborts {
		t.Fatalf("starts %d != commits %d + aborts %d", st.Starts, st.Commits, st.Aborts)
	}
}
