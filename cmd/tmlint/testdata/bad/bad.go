// Package bad is a fixture for the tmlint driver tests: it carries one
// known atomicmix violation (a field read plainly and updated atomically).
package bad

import "sync/atomic"

type c struct {
	n uint64
}

func bump(x *c) {
	atomic.AddUint64(&x.n, 1)
}

func peek(x *c) uint64 {
	return x.n
}
