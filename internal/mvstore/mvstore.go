// Package mvstore is the multi-version store behind the durable commit
// pipeline. Every committed write-set lands here, keyed by its publication
// sequence, before the out-of-order write-back drains it into the flat
// heap. Read-only transactions then execute against a pinned snapshot
// height instead of entering the validation engine at all: a snapshot at
// height h observes exactly the writes of commits with sequence < h, which
// is a consistent LSA snapshot because publication order equals
// serialization order.
//
// # Version chains and the base value
//
// The store shards a map from heap address to a version chain. A chain
// holds the address's pre-history value ("base") plus an ascending list of
// (seq, value) versions. The base is captured from the live heap at the
// moment the chain is created — i.e. at the first ApplyUpdates naming the
// address. That read is sound because ApplyUpdates runs at publication
// time, strictly before the publishing commit's own write-back touches the
// heap (and every earlier commit writing the address would already have a
// chain), so the heap still holds the value from before any versioned
// write.
//
// Addresses never written since the store opened have no chain; Snapshot
// reads fall back to the live heap with a miss → load → re-check-miss
// double check (see Snapshot.Read) so a concurrent first write cannot leak
// a future value into an older snapshot.
//
// # Applying and compacting
//
// ApplyUpdates must be called by a single goroutine at a time, in strictly
// ascending sequence order — in this repository that caller is the ordered
// publication arm of the commit pipeline (and, during recovery, the WAL
// replay loop). Every CompactEvery applies the store folds versions below
// the minimum pinned snapshot height into the chain bases, bounding memory
// under long-running workloads while pinned snapshots stay readable.
package mvstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rococotm/internal/mem"
)

// Config sizes a Store.
type Config struct {
	// Shards is the number of chain-map shards; it must be a power of two.
	// 0 means 64.
	Shards int
	// CompactEvery is the number of ApplyUpdates calls between compaction
	// sweeps. 0 means 4096; negative disables compaction.
	CompactEvery int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Shards == 0 {
		out.Shards = 64
	}
	if out.Shards < 1 || out.Shards&(out.Shards-1) != 0 {
		return out, fmt.Errorf("mvstore: Shards must be a power of two, got %d", out.Shards)
	}
	if out.CompactEvery == 0 {
		out.CompactEvery = 4096
	}
	return out, nil
}

// chain is one address's version history. base is immutable after the
// chain is inserted into its shard map; seqs/vals are guarded by the shard
// lock and kept in strictly ascending seq order.
type chain struct {
	base mem.Word
	seqs []uint64
	vals []mem.Word
}

// lookup returns the value visible at snapshot height h (the newest
// version with seq < h, else base). Caller holds the shard lock (read or
// write).
//
//tm:hotpath
func (c *chain) lookup(h uint64) mem.Word {
	lo, hi := 0, len(c.seqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.seqs[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return c.base
	}
	return c.vals[lo-1]
}

type shard struct {
	mu     sync.RWMutex
	chains map[mem.Addr]*chain
	_      [24]byte // keep neighbouring shard locks off one cache line
}

// Stats is a point-in-time observability snapshot of a Store.
type Stats struct {
	Height      uint64 // next sequence to apply
	Applies     uint64 // ApplyUpdates calls
	Compactions uint64 // compaction sweeps run
	Chains      int    // addresses with a version chain
	Versions    int    // retained versions across all chains
	Pins        int    // live snapshot pins
}

// Store is the multi-version map. See the package comment for the
// concurrency contract.
type Store struct {
	heap   *mem.Heap
	shards []shard
	mask   uint64

	height      atomic.Uint64 // next seq to apply; snapshots pin this
	applies     atomic.Uint64
	compactions atomic.Uint64

	cfg Config

	pinMu        sync.Mutex
	pins         map[uint64]int // snapshot height -> refcount
	sinceCompact int
}

// New returns an empty store over heap. Reads of never-written addresses
// fall back to the heap, so an already-populated heap is a valid starting
// state (recovery relies on this).
func New(heap *mem.Heap, cfg Config) (*Store, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{
		heap:   heap,
		shards: make([]shard, full.Shards),
		mask:   uint64(full.Shards - 1),
		cfg:    full,
		pins:   make(map[uint64]int),
	}
	for i := range s.shards {
		s.shards[i].chains = make(map[mem.Addr]*chain)
	}
	return s, nil
}

// Height returns the next sequence ApplyUpdates will accept; equivalently,
// the height a snapshot taken now would pin.
func (s *Store) Height() uint64 { return s.height.Load() }

// Heap returns the fallback heap the store was opened over.
func (s *Store) Heap() *mem.Heap { return s.heap }

// Stats sweeps the shards; it is for tests and reporting, not hot paths.
func (s *Store) Stats() Stats {
	st := Stats{
		Height:      s.height.Load(),
		Applies:     s.applies.Load(),
		Compactions: s.compactions.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Chains += len(sh.chains)
		for _, c := range sh.chains {
			st.Versions += len(c.seqs)
		}
		sh.mu.RUnlock()
	}
	s.pinMu.Lock()
	for _, n := range s.pins {
		st.Pins += n
	}
	s.pinMu.Unlock()
	return st
}

// ApplyUpdates installs one committed write-set at its publication
// sequence. It panics if seq is not the store height: sequences must
// arrive contiguously and in order, exactly as the ordered publication arm
// produces them. addrs and vals are parallel; the store copies what it
// needs, so the caller may reuse both slices.
func (s *Store) ApplyUpdates(seq uint64, addrs []mem.Addr, vals []mem.Word) {
	if h := s.height.Load(); seq != h {
		panic(fmt.Sprintf("mvstore: ApplyUpdates(%d) at height %d (out-of-order publication)", seq, h))
	}
	for i, a := range addrs {
		sh := &s.shards[uint64(a)&s.mask]
		sh.mu.Lock()
		c := sh.chains[a]
		if c == nil {
			// First versioned write to this address: the heap still holds
			// the pre-history value (write-back for this very commit has
			// not run yet — apply precedes it).
			c = &chain{base: s.heap.Load(a)}
			sh.chains[a] = c
		}
		if n := len(c.seqs); n > 0 && c.seqs[n-1] == seq {
			// Same commit wrote the address twice; last write wins.
			c.vals[n-1] = vals[i]
		} else {
			c.seqs = append(c.seqs, seq)
			c.vals = append(c.vals, vals[i])
		}
		sh.mu.Unlock()
	}
	s.height.Store(seq + 1)
	s.applies.Add(1)
	if s.cfg.CompactEvery > 0 {
		s.sinceCompact++
		if s.sinceCompact >= s.cfg.CompactEvery {
			s.sinceCompact = 0
			s.compact()
		}
	}
}

// compact folds versions below the minimum pinned height into chain
// bases. Runs on the ApplyUpdates goroutine.
func (s *Store) compact() {
	s.pinMu.Lock()
	min := s.height.Load()
	for h := range s.pins {
		if h < min {
			min = h
		}
	}
	s.pinMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for a, c := range sh.chains {
			// Count versions with seq < min; the newest of them becomes
			// the base, the rest are history no live snapshot can see.
			cut := 0
			for cut < len(c.seqs) && c.seqs[cut] < min {
				cut++
			}
			if cut == 0 {
				continue
			}
			base := c.vals[cut-1]
			nseqs := append(c.seqs[:0:0], c.seqs[cut:]...)
			nvals := append(c.vals[:0:0], c.vals[cut:]...)
			sh.chains[a] = &chain{base: base, seqs: nseqs, vals: nvals}
		}
		sh.mu.Unlock()
	}
	s.compactions.Add(1)
}

// Snapshot is a consistent read-only view at a pinned height: it observes
// the writes of every commit with publication sequence < Height() and
// nothing newer. Reads are infallible — a snapshot can never abort.
// Snapshots must be released (Store.ReleaseSnapshot) or compaction stalls
// at their height.
type Snapshot struct {
	s        *Store
	h        uint64
	released bool
}

// Height returns the pinned height.
func (sn *Snapshot) Height() uint64 { return sn.h }

// RetrieveSnapshot pins the current height and returns a snapshot reading
// at it.
func (s *Store) RetrieveSnapshot() *Snapshot {
	s.pinMu.Lock()
	// Height is read under pinMu so a concurrent compaction either sees
	// this pin or ran before it — in which case the height read here is at
	// least the compaction's fold point and the snapshot is safe either
	// way.
	h := s.height.Load()
	s.pins[h]++
	s.pinMu.Unlock()
	return &Snapshot{s: s, h: h}
}

// ReleaseSnapshot unpins sn. Releasing a snapshot twice is a programming
// error and panics.
func (s *Store) ReleaseSnapshot(sn *Snapshot) {
	if sn.s != s {
		panic("mvstore: ReleaseSnapshot on foreign snapshot")
	}
	if sn.released {
		panic("mvstore: snapshot released twice")
	}
	sn.released = true
	s.pinMu.Lock()
	n := s.pins[sn.h] - 1
	if n == 0 {
		delete(s.pins, sn.h)
	} else {
		s.pins[sn.h] = n
	}
	s.pinMu.Unlock()
}

// Read returns the word at a as of the snapshot height. It never fails.
//
// The no-chain path double-checks: a miss, a live-heap load, then a
// re-check of the chain map. If the chain is still absent, no write-back
// has ever touched the address (apply precedes write-back), so the heap
// load returned the pre-history value, which is correct at every height.
// If a chain appeared between the checks, all its versions postdate this
// snapshot's pin, so lookup falls through to the chain's base — the value
// captured before that first write-back could race the heap load.
//
//tm:hotpath
func (sn *Snapshot) Read(a mem.Addr) mem.Word {
	sh := &sn.s.shards[uint64(a)&sn.s.mask]
	sh.mu.RLock()
	c := sh.chains[a]
	if c != nil {
		v := c.lookup(sn.h)
		sh.mu.RUnlock()
		return v
	}
	sh.mu.RUnlock()
	v := sn.s.heap.Load(a)
	sh.mu.RLock()
	c = sh.chains[a]
	sh.mu.RUnlock()
	if c == nil {
		return v
	}
	return c.base
}
