// Package compare holds cross-runtime behavioural tests: the same
// schedules driven through TinySTM and ROCoCoTM side by side, pinning the
// paper's central claims as executable facts.
package compare

import (
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/rococotm"
	"rococotm/internal/stm/tinystm"
	"rococotm/internal/tm"
)

// fig2bSchedule drives the Figure 2(b) pattern through a runtime: t3 reads
// x and y, a concurrent transaction t1 overwrites y and commits, then t3
// writes z and tries to commit. The completed history is serializable
// (t3 before t1), but commit-order timestamping cannot express it.
// Returns whether t3 committed.
func fig2bSchedule(t *testing.T, m tm.TM) bool {
	t.Helper()
	h := m.Heap()
	x := h.MustAlloc(1)
	y := h.MustAlloc(1)
	z := h.MustAlloc(1)

	// t2: write x, commit (the version t3 will read).
	if err := tm.Run(m, 2, func(tx tm.Txn) error { return tx.Write(x, 22) }); err != nil {
		t.Fatal(err)
	}
	// t3 begins, reads x (t2's version) and y (initial).
	t3, err := m.Begin(3)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := t3.Read(x); err != nil || v != 22 {
		t.Fatalf("t3 read x = %d, %v", v, err)
	}
	if v, err := t3.Read(y); err != nil || v != 0 {
		t.Fatalf("t3 read y = %d, %v", v, err)
	}
	// t1: overwrite y and commit while t3 is live.
	if err := tm.Run(m, 1, func(tx tm.Txn) error { return tx.Write(y, 11) }); err != nil {
		t.Fatal(err)
	}
	// t3 writes a disjoint location and commits.
	if err := t3.Write(z, 33); err != nil {
		if _, ok := tm.IsAbort(err); ok {
			return false
		}
		t.Fatal(err)
	}
	err = m.Commit(t3)
	if err == nil {
		return true
	}
	if _, ok := tm.IsAbort(err); !ok {
		t.Fatal(err)
	}
	return false
}

// TestFig2bRuntimeContrast is the runtime counterpart of §3.1: the same
// serializable schedule is rejected by TinySTM's commit-time timestamps
// (the phantom ordering) and accepted by ROCoCoTM's reachability check.
func TestFig2bRuntimeContrast(t *testing.T) {
	tiny := tinystm.New(mem.NewHeap(1<<12), tinystm.Config{})
	defer tiny.Close()
	if fig2bSchedule(t, tiny) {
		t.Fatal("TinySTM committed the Fig 2(b) schedule — its TOCC restriction should reject it")
	}

	roc := rococotm.New(mem.NewHeap(1<<12), rococotm.Config{})
	defer roc.Close()
	if !fig2bSchedule(t, roc) {
		t.Fatal("ROCoCoTM aborted the Fig 2(b) schedule — reachability validation should commit it")
	}
}

// TestCycleRejectedByBoth: when the schedule genuinely cycles (t3 also
// overwrites what t1 wrote), both runtimes must abort t3 — ROCoCo's
// permissiveness never extends to real cycles.
func TestCycleRejectedByBoth(t *testing.T) {
	drive := func(m tm.TM) bool {
		h := m.Heap()
		y := h.MustAlloc(1)
		t3, err := m.Begin(3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := t3.Read(y); err != nil {
			t.Fatal(err)
		}
		if err := tm.Run(m, 1, func(tx tm.Txn) error { return tx.Write(y, 1) }); err != nil {
			t.Fatal(err)
		}
		if err := t3.Write(y, 2); err != nil {
			if _, ok := tm.IsAbort(err); ok {
				return false
			}
			t.Fatal(err)
		}
		return m.Commit(t3) == nil
	}
	tiny := tinystm.New(mem.NewHeap(1<<12), tinystm.Config{})
	defer tiny.Close()
	if drive(tiny) {
		t.Fatal("TinySTM committed a stale read-modify-write")
	}
	roc := rococotm.New(mem.NewHeap(1<<12), rococotm.Config{})
	defer roc.Close()
	if drive(roc) {
		t.Fatal("ROCoCoTM committed a dependency cycle")
	}
}

// TestReorderDepthBeyondOne: ROCoCo can serialize a transaction before a
// *chain* of later commits, not just one — the general reachability case
// a single-version timestamp can never express.
func TestReorderDepthBeyondOne(t *testing.T) {
	m := rococotm.New(mem.NewHeap(1<<12), rococotm.Config{})
	defer m.Close()
	h := m.Heap()
	a := h.MustAlloc(1)
	b := h.MustAlloc(1)
	c := h.MustAlloc(1)
	out := h.MustAlloc(1)

	t0, err := m.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	// t0 reads three locations that three later transactions overwrite in
	// a dependent chain.
	for _, addr := range []mem.Addr{a, b, c} {
		if _, err := t0.Read(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := tm.Run(m, 1, func(tx tm.Txn) error { return tx.Write(a, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(m, 2, func(tx tm.Txn) error {
		v, err := tx.Read(a) // chain: depends on the first writer
		if err != nil {
			return err
		}
		return tx.Write(b, v+1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(m, 3, func(tx tm.Txn) error {
		v, err := tx.Read(b)
		if err != nil {
			return err
		}
		return tx.Write(c, v+1)
	}); err != nil {
		t.Fatal(err)
	}
	// t0 writes a disjoint output: serializable as t0 first, three commits
	// after — ROCoCo orders t0 before the whole chain.
	if err := t0.Write(out, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t0); err != nil {
		t.Fatalf("ROCoCoTM aborted a reorder of depth 3: %v", err)
	}
	if h.Load(out) != 7 || h.Load(c) != 3 {
		t.Fatal("final state wrong")
	}
}
