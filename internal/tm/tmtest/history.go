package tmtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"rococotm/internal/mem"
	"rococotm/internal/semantics"
	"rococotm/internal/tm"
)

// HistoryOptions tunes the recorded-history serializability check.
type HistoryOptions struct {
	Threads   int
	TxnsEach  int
	Addresses int
	// Readers adds pure read-only transactions to the mix. Runtimes that
	// commit invisible readers outside their validation scope (ROCoCoTM's
	// CPU-side read-only fast path, §5.3) may order them by snapshot while
	// writers get reorderd; set false to scope the check to the runtime's
	// guarantee.
	Readers bool
	Seed    int64
}

// record is one committed transaction's observation log.
type record struct {
	id         string
	start, end float64
	reads      map[mem.Addr]mem.Word // observed token per address
	writes     map[mem.Addr]mem.Word // written token per address
}

// HistorySerializable drives a random read-modify-write workload through
// the runtime, records every committed transaction's reads-from relation
// via unique write tokens, reconstructs the history, and checks it with
// the §3 serializability checker — an end-to-end, oracle-based correctness
// test connecting the runtimes to the semantics package.
//
// Every write is part of an RMW (the transaction read the address first),
// so each address's version order is recoverable by chaining reads-from,
// and lost updates surface as broken chains.
func HistorySerializable(t *testing.T, mk Factory, opts HistoryOptions) {
	t.Helper()
	if opts.Threads == 0 {
		opts.Threads = 6
	}
	if opts.TxnsEach == 0 {
		opts.TxnsEach = 120
	}
	if opts.Addresses == 0 {
		opts.Addresses = 12
	}
	m := mk()
	defer m.Close()
	base := m.Heap().MustAlloc(opts.Addresses)

	var tokenMu sync.Mutex
	nextToken := mem.Word(1)
	newToken := func() mem.Word {
		tokenMu.Lock()
		defer tokenMu.Unlock()
		tok := nextToken
		nextToken++
		return tok
	}

	epoch := time.Now()
	now := func() float64 { return float64(time.Since(epoch)) }

	var recMu sync.Mutex
	var records []record

	var wg sync.WaitGroup
	errs := make(chan error, opts.Threads)
	for th := 0; th < opts.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(th)*7919))
			for i := 0; i < opts.TxnsEach; i++ {
				readOnly := opts.Readers && rng.Intn(3) == 0
				nOps := 1 + rng.Intn(3)
				addrs := make([]mem.Addr, nOps)
				for j := range addrs {
					addrs[j] = base + mem.Addr(rng.Intn(opts.Addresses))
				}
				toks := make([]mem.Word, nOps)
				if !readOnly {
					for j := range toks {
						toks[j] = newToken()
					}
				}
				rec := record{
					id:    fmt.Sprintf("t%d.%d", th, i),
					start: now(),
				}
				err := tm.Run(m, th, func(x tm.Txn) error {
					rec.reads = map[mem.Addr]mem.Word{}
					rec.writes = map[mem.Addr]mem.Word{}
					for j, a := range addrs {
						if _, done := rec.writes[a]; done {
							continue // one RMW per address per txn
						}
						// Force fine-grained interleaving on a single-CPU
						// host so transactions genuinely overlap.
						runtime.Gosched()
						v, err := x.Read(a)
						if err != nil {
							return err
						}
						rec.reads[a] = v
						if !readOnly {
							if err := x.Write(a, toks[j]); err != nil {
								return err
							}
							rec.writes[a] = toks[j]
						}
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				rec.end = now()
				recMu.Lock()
				records = append(records, rec)
				recMu.Unlock()
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	h, err := buildHistory(records, base, opts.Addresses)
	if err != nil {
		t.Fatalf("history reconstruction: %v", err)
	}
	ok, _, err := h.Serializable()
	if err != nil {
		t.Fatalf("history check: %v", err)
	}
	if !ok {
		t.Fatalf("%s produced a non-serializable history (%d committed txns)",
			m.Name(), len(records))
	}
}

// buildHistory converts observation records into a semantics.History:
// tokens identify writers, and per-address write order is recovered by
// chaining each writer's observed predecessor token.
func buildHistory(records []record, base mem.Addr, addresses int) (semantics.History, error) {
	writerOf := map[mem.Word]string{} // token → txn id
	for _, r := range records {
		for _, tok := range r.writes {
			if prev, dup := writerOf[tok]; dup {
				return semantics.History{}, fmt.Errorf("token %d written twice (%s, %s)", tok, prev, r.id)
			}
			writerOf[tok] = r.id
		}
	}
	obj := func(a mem.Addr) string { return fmt.Sprintf("x%d", a-base) }

	var h semantics.History
	h.WriteOrder = map[string][]string{}
	for _, r := range records {
		txn := semantics.Txn{
			ID:    r.id,
			Start: r.start,
			End:   r.end,
			Reads: map[string]string{},
		}
		if txn.End <= txn.Start {
			txn.End = txn.Start + 1 // zero-duration guard
		}
		for a, tok := range r.reads {
			ver := semantics.InitialVersion
			if tok != 0 {
				w, ok := writerOf[tok]
				if !ok {
					return semantics.History{}, fmt.Errorf("%s read unknown token %d", r.id, tok)
				}
				ver = w
			}
			txn.Reads[obj(a)] = ver
		}
		for a := range r.writes {
			txn.Writes = append(txn.Writes, obj(a))
		}
		h.Txns = append(h.Txns, txn)
	}

	// Reconstruct per-address version order by chaining RMW reads-from:
	// the writer that observed token T wrote the successor of T.
	for ai := 0; ai < addresses; ai++ {
		a := base + mem.Addr(ai)
		succ := map[mem.Word]record{} // observed token → writer record
		count := 0
		for _, r := range records {
			tok, wrote := r.writes[a]
			if !wrote {
				continue
			}
			prev := r.reads[a]
			if _, dup := succ[prev]; dup {
				return semantics.History{}, fmt.Errorf(
					"lost update on %s: two writers observed token %d", obj(a), prev)
			}
			succ[prev] = r
			_ = tok
			count++
		}
		var order []string
		cur := mem.Word(0) // initial version
		for {
			r, ok := succ[cur]
			if !ok {
				break
			}
			order = append(order, r.id)
			cur = r.writes[a]
		}
		if len(order) != count {
			return semantics.History{}, fmt.Errorf(
				"broken version chain on %s: %d of %d writers reachable", obj(a), len(order), count)
		}
		if len(order) > 0 {
			h.WriteOrder[obj(a)] = order
		}
	}
	return h, nil
}
