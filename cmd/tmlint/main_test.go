package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"rococotm/internal/lint"
)

// TestHumanOutput: the default format is file:line: [pass] message and a
// finding makes the driver exit 1.
func TestHumanOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"testdata/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "testdata/bad/bad.go:16: [atomicmix]") {
		t.Errorf("human output missing the expected finding:\n%s", out)
	}
	if strings.Contains(out, `"pass"`) {
		t.Errorf("human output contains JSON:\n%s", out)
	}
}

// TestJSONOutput: -json emits one record per line with file/line/pass/
// message fields.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "testdata/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d records, want 1:\n%s", len(lines), stdout.String())
	}
	var rec jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.File != "testdata/bad/bad.go" || rec.Line != 16 || rec.Pass != "atomicmix" || rec.Message == "" {
		t.Errorf("unexpected record: %+v", rec)
	}
}

// TestListCoversRegistry: -list must describe every pass in the registry,
// including whole-module modes like hotalloc, each with a doc string.
func TestListCoversRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	out := stdout.String()
	reg := lint.Registry()
	if len(reg) < 10 {
		t.Fatalf("registry has %d passes, want at least 10", len(reg))
	}
	for _, p := range reg {
		if !strings.Contains(out, p.Name) {
			t.Errorf("-list omits pass %q", p.Name)
		}
		if p.Doc == "" {
			t.Errorf("pass %q has no doc string", p.Name)
		}
		if !strings.Contains(out, p.Doc) {
			t.Errorf("-list omits the description of %q", p.Name)
		}
	}
}

// TestSummaryLine: -summary reports pass, finding and suppression counts
// on stderr.
func TestSummaryLine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-summary", "testdata/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	want := fmt.Sprintf("tmlint: %d passes, 1 findings, 0 suppressed", len(lint.Passes()))
	if !strings.Contains(stderr.String(), want) {
		t.Errorf("summary line %q missing from stderr:\n%s", want, stderr.String())
	}
}
