package fpga

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rococotm/internal/core"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; empty means valid
	}{
		{"zero value", Config{}, ""},
		{"paper deployment", Config{W: 64, QueueDepth: 64}, ""},
		{"small window", Config{W: 4}, ""},
		{"negative W", Config{W: -1}, "out of range"},
		{"wide window", Config{W: 128, QueueDepth: 128}, ""},
		{"oversized W", Config{W: MaxW + 1}, "out of range"},
		{"cycle-level wide window", Config{W: 128, QueueDepth: 128, CycleLevel: true}, "caps W at 64"},
		{"negative queue", Config{QueueDepth: -1}, "negative"},
		{"queue shallower than window", Config{W: 16, QueueDepth: 8}, "shallower"},
		{"queue shallower than default window", Config{QueueDepth: 32}, "shallower"},
		{"queue equals window", Config{W: 16, QueueDepth: 16}, ""},
		{"negative clock", Config{Model: LatencyModel{ClockMHz: -1}}, "latency-model"},
		{"negative depth", Config{Model: LatencyModel{PipelineDepth: -2}}, "latency-model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestStartRejectsInvalidConfig(t *testing.T) {
	if _, err := Start(Config{W: MaxW + 1}); err == nil {
		t.Fatalf("Start accepted W=%d", MaxW+1)
	}
	if _, err := Start(Config{W: 16, QueueDepth: 4}); err == nil {
		t.Fatal("Start accepted QueueDepth < W")
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (background runtime goroutines may fluctuate, so poll with a
// deadline rather than comparing once).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownMidValidation closes the engine while many validations are
// in flight: every outstanding request must resolve — a verdict (terminal
// ReasonClosed counts) or a definite error — and no goroutine may be left
// behind.
func TestShutdownMidValidation(t *testing.T) {
	for _, cycleLevel := range []bool{false, true} {
		name := "behavioral"
		if cycleLevel {
			name = "cycle-level"
		}
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			e, err := Start(Config{W: 4, QueueDepth: 4, CycleLevel: cycleLevel})
			if err != nil {
				t.Fatal(err)
			}
			const n = 24
			results := make(chan error, n)
			var started sync.WaitGroup
			started.Add(n)
			for i := 0; i < n; i++ {
				go func(i int) {
					started.Done()
					for j := 0; ; j++ {
						v, err := e.Validate(Request{
							Token:     uint64(i),
							ValidTS:   uint64(e.NextSeq()),
							ReadAddrs: []uint64{uint64(i)}, WriteAddrs: []uint64{uint64(100 + i)},
						})
						if err != nil {
							if !errors.Is(err, ErrClosed) {
								results <- err
								return
							}
							results <- nil // definite error: resolved
							return
						}
						if v.Reason == ReasonClosed {
							results <- nil // terminal verdict: resolved
							return
						}
						// Normal verdict; keep the engine busy until the
						// close lands.
						_ = j
					}
				}(i)
			}
			started.Wait()
			time.Sleep(time.Millisecond) // let validations pile into the queue
			e.Close()
			for i := 0; i < n; i++ {
				select {
				case err := <-results:
					if err != nil {
						t.Fatal(err)
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("request %d never resolved after Close", i)
				}
			}
			settleGoroutines(t, baseline)
		})
	}
}

// TestCrashDeliversTerminalVerdicts parks requests in the pull queue of a
// crashed engine and checks each gets its ReasonClosed verdict.
func TestCrashDeliversTerminalVerdicts(t *testing.T) {
	e, err := Start(Config{W: 4, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Crash()
	// Submissions after the crash fail definitively…
	if err := e.Submit(Request{Reply: make(chan Verdict, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit on crashed engine = %v, want ErrClosed", err)
	}
	if err := e.TrySubmit(Request{Reply: make(chan Verdict, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit on crashed engine = %v, want ErrClosed", err)
	}
}

// TestRestartRebasesWindow drives the crash/recover protocol: a restarted
// engine starts with an empty window rebased at the host's commit count,
// aborts stale snapshots with a window verdict, and accepts fresh ones at
// the rebased sequence.
func TestRestartRebasesWindow(t *testing.T) {
	e, err := Start(Config{W: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 5; i++ {
		v, err := e.Validate(req(uint64(i), nil, []uint64{uint64(10 * i)}))
		if err != nil || !v.OK {
			t.Fatalf("seed commit %d: %+v, %v", i, v, err)
		}
	}
	e.Crash()
	if err := e.Restart(5); err != nil {
		t.Fatal(err)
	}
	if got := e.BaseSeq(); got != 5 {
		t.Fatalf("BaseSeq after Restart(5) = %d", got)
	}
	// A snapshot that predates the rebase depends on lost history: even
	// though the window is empty, the engine must abort it.
	v, err := e.Validate(req(2, []uint64{1}, []uint64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Reason != ReasonWindow {
		t.Fatalf("stale snapshot after restart: %+v", v)
	}
	// A current snapshot commits at the rebased sequence.
	v, err = e.Validate(req(5, []uint64{1}, []uint64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Seq != 5 {
		t.Fatalf("fresh snapshot after restart: %+v", v)
	}
	if st := e.Stats(); st.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", st.Restarts)
	}
}

// TestRestartIdempotentOnLiveEngine checks that a Restart which would
// change nothing — live engine, empty window already based at next — is a
// no-op: the recovery prober issues redundant Restarts (one per probe
// round plus one at promotion), and each must not crash a healthy port or
// re-reseed the window.
func TestRestartIdempotentOnLiveEngine(t *testing.T) {
	e, err := Start(Config{W: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Crash()
	if err := e.Restart(5); err != nil {
		t.Fatal(err)
	}
	// Redundant restarts at the same base are elided.
	for i := 0; i < 3; i++ {
		if err := e.Restart(5); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Restarts != 1 {
		t.Fatalf("Restarts after redundant Restart(5) = %d, want 1", st.Restarts)
	}
	if got := e.BaseSeq(); got != 5 {
		t.Fatalf("BaseSeq = %d, want 5", got)
	}
	// The elided restart left a fully functional engine.
	v, err := e.Validate(req(5, nil, []uint64{1}))
	if err != nil || !v.OK || v.Seq != 5 {
		t.Fatalf("commit after elided restart: %+v, %v", v, err)
	}
	// A rebase to a different count is real…
	if err := e.Restart(9); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Restarts != 2 {
		t.Fatalf("Restarts after Restart(9) = %d, want 2", st.Restarts)
	}
	if got := e.BaseSeq(); got != 9 {
		t.Fatalf("BaseSeq = %d, want 9", got)
	}
	// …and so is a restart of a window that has accumulated commits, even
	// at the same next-sequence (it must flush the window contents).
	if v, _ := e.Validate(req(9, nil, []uint64{2})); !v.OK {
		t.Fatal("seed commit rejected")
	}
	if err := e.Restart(10); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Restarts != 3 {
		t.Fatalf("Restarts after post-traffic Restart = %d, want 3", st.Restarts)
	}
}

// TestProbeCommitsNothing checks that probe requests answer OK without
// consuming a sequence number or touching the window.
func TestProbeCommitsNothing(t *testing.T) {
	for _, cycleLevel := range []bool{false, true} {
		name := "behavioral"
		if cycleLevel {
			name = "cycle-level"
		}
		t.Run(name, func(t *testing.T) {
			e, err := Start(Config{W: 8, CycleLevel: cycleLevel})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			if v, _ := e.Validate(req(0, nil, []uint64{1})); !v.OK {
				t.Fatal("seed commit rejected")
			}
			v, err := e.Validate(Request{Probe: true})
			if err != nil {
				t.Fatal(err)
			}
			if !v.OK || !v.Probe {
				t.Fatalf("probe verdict: %+v", v)
			}
			// The next real commit takes sequence 1: the probe consumed
			// nothing.
			v, err = e.Validate(req(1, nil, []uint64{2}))
			if err != nil {
				t.Fatal(err)
			}
			if !v.OK || v.Seq != core.Seq(1) {
				t.Fatalf("commit after probe: %+v", v)
			}
			if st := e.Stats(); st.Probes == 0 {
				t.Fatal("probe not counted")
			}
		})
	}
}
