// Package updatelock is golden-test input for the updatelock pass.
package updatelock

import (
	"errors"
	"sync/atomic"
)

type slot struct {
	active atomic.Uint32
	seq    atomic.Uint64
}

type runtimeT struct {
	updates []slot
}

var errBad = errors.New("bad")

// leakOnErrorPath is the bug class: an error-path return between the
// acquire and the release leaves the entry locked forever.
func leakOnErrorPath(u *slot, fail bool) error {
	u.seq.Store(7)
	u.active.Store(1)
	if fail {
		return errBad // want `\[updatelock\] return while the update-set entry \(u\.active\.Store\(1\)\) is still held`
	}
	u.active.Store(0)
	return nil
}

// leakOnEveryPath: even the success return leaks.
func leakOnEveryPath(u *slot) error {
	u.active.Store(1)
	return nil // want `\[updatelock\] return while the update-set entry`
}

// releaseBothPaths is correct: each branch releases before returning.
func releaseBothPaths(u *slot, fail bool) error {
	u.active.Store(1)
	if fail {
		u.active.Store(0)
		return errBad
	}
	u.active.Store(0)
	return nil
}

// deferredRelease is correct: the defer covers every later return.
func deferredRelease(u *slot, fail bool) error {
	u.active.Store(1)
	defer u.active.Store(0)
	if fail {
		return errBad
	}
	return nil
}

// releaseHelper releases some entry; callers handing their entry to it are
// covered (the abandonCommit pattern).
func releaseHelper(r *runtimeT, th int) error {
	r.updates[th].active.Store(0)
	return errBad
}

// delegated is correct: the helper call on the error path performs the
// release transitively.
func delegated(r *runtimeT, th int, fail bool) error {
	u := &r.updates[th]
	u.active.Store(1)
	if fail {
		return releaseHelper(r, th)
	}
	u.active.Store(0)
	return nil
}

// indirectHelper delegates one level further; the fixpoint must close
// over it.
func indirectHelper(r *runtimeT, th int) error {
	return releaseHelper(r, th)
}

func delegatedTwice(r *runtimeT, th int, fail bool) error {
	u := &r.updates[th]
	u.active.Store(1)
	if err := guarded(r, th, fail); err != nil {
		return err
	}
	u.active.Store(0)
	return nil
}

// guarded releases (transitively) on its error path, so the caller's
// `return err` above is fine.
func guarded(r *runtimeT, th int, fail bool) error {
	if fail {
		return indirectHelper(r, th)
	}
	return nil
}

// leakViaPlainHelper: the helper does NOT release, so the error-path
// return still leaks.
func plainHelper(fail bool) error {
	if fail {
		return errBad
	}
	return nil
}

func leakViaPlainHelper(u *slot, fail bool) error {
	u.active.Store(1)
	if err := plainHelper(fail); err != nil {
		return err // want `\[updatelock\] return while the update-set entry`
	}
	u.active.Store(0)
	return nil
}

// leakInNestedBranch: the return hides two levels down.
func leakInNestedBranch(u *slot, a, b bool) error {
	u.active.Store(1)
	if a {
		if b {
			return errBad // want `\[updatelock\] return while the update-set entry`
		}
	}
	u.active.Store(0)
	return nil
}

// releaseThenReturnInBranch is correct: the branch releases before its
// return.
func releaseThenReturnInBranch(u *slot, fail bool) error {
	u.active.Store(1)
	if fail {
		u.active.Store(0)
		return errBad
	}
	u.active.Store(0)
	return nil
}

// suppressed shows the escape hatch.
func suppressed(u *slot, fail bool) error {
	u.active.Store(1)
	if fail {
		//lint:ignore tmlint/updatelock the caller owns the entry and releases it after inspecting the error
		return errBad
	}
	u.active.Store(0)
	return nil
}

// otherAtomicsAreNotLocks: Store(1) on a field not named active is out of
// scope.
func otherAtomicsAreNotLocks(u *slot, fail bool) error {
	u.seq.Store(1)
	if fail {
		return errBad
	}
	return nil
}
