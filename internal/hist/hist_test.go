package hist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestQuantileAccuracy checks the log-linear approximation stays within
// its documented relative-error bound against exact order statistics.
func TestQuantileAccuracy(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	var exact []uint64
	for i := 0; i < 100000; i++ {
		// Log-uniform over ~1µs..100ms, the serving latency range.
		ns := uint64(1000 * (1 << uint(rng.Intn(17))))
		ns += uint64(rng.Int63n(int64(ns)))
		exact = append(exact, ns)
		h.Record(time.Duration(ns))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	s := h.Snapshot()
	if s.Count() != uint64(len(exact)) {
		t.Fatalf("count = %d, want %d", s.Count(), len(exact))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := float64(exact[int(q*float64(len(exact)-1))])
		got := float64(s.Quantile(q))
		if rel := (got - want) / want; rel < -0.07 || rel > 0.07 {
			t.Errorf("q=%v: got %v want %v (rel %.3f)", q, got, want, rel)
		}
	}
}

// TestWindowedSub diffs two snapshots and checks only the window shows.
func TestWindowedSub(t *testing.T) {
	h := New()
	for i := 0; i < 100; i++ {
		h.Record(time.Microsecond)
	}
	s1 := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(time.Millisecond)
	}
	w := h.Snapshot().Sub(s1)
	if w.Count() != 50 {
		t.Fatalf("window count = %d, want 50", w.Count())
	}
	if p := w.P50(); p < 900*time.Microsecond || p > 1100*time.Microsecond {
		t.Errorf("window p50 = %v, want ~1ms", p)
	}
}

// TestEmptyAndClamp covers the zero snapshot and negative durations.
func TestEmptyAndClamp(t *testing.T) {
	var s Snapshot
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot must report zeros")
	}
	h := New()
	h.Record(-time.Second)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("negative duration should clamp to bucket 0, got %v", got)
	}
	small := New()
	small.Record(20) // 20ns: first log-linear bucket range
	if got := small.Snapshot().Quantile(0.5); got < 20 || got > 21 {
		t.Errorf("20ns lands in bucket [20,21), got %v", got)
	}
}

// TestConcurrentRecord exercises Record under the race detector.
func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	const per = 10000
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 4*per {
		t.Fatalf("count = %d, want %d", got, 4*per)
	}
}

// TestZeroAllocsRecord pins the no-allocation contract of the hot path.
func TestZeroAllocsRecord(t *testing.T) {
	h := New()
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Record allocates %v times per call; want 0", n)
	}
}
