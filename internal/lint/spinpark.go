package lint

import (
	"go/ast"
	"go/types"
)

// runSpinPark flags spin-wait loops that can starve the scheduler: a
// `for` loop polling shared atomic state (slot waits, ring full/empty
// retries) whose body never yields and never attempts lock-free
// progress. On a box with GOMAXPROCS goroutines pinned in such loops the
// writer that would satisfy the wait may never be scheduled — the shape
// the PR 4 watchdog only catches at runtime, after the stall.
//
// A loop is a spin-wait candidate when its condition performs an atomic
// load, or it is an unconditional `for {}` whose body performs one.
// Bounded counter loops (`for i := 0; i < limit; i++`) are not
// candidates: the bound is the escalation.
//
// The loop is accepted when any iteration can yield or progress:
//
//   - runtime.Gosched or time.Sleep (yield / back off);
//   - a channel operation or select (parks in the runtime);
//   - a sync.Mutex/RWMutex Lock, sync.WaitGroup/Cond Wait (parks);
//   - a read-modify-write atomic (Add/Swap/CompareAndSwap/And/Or) — a
//     CAS retry loop is lock-free progress, not a pure spin: a failed
//     attempt means another thread advanced. A plain Store does not
//     count; it usually sits on the success branch the spin never takes;
//   - a call into a function that transitively does any of the above.
//     Cross-package, interface and func-value callees are conservatively
//     assumed to yield; only same-package static callees are walked.
func runSpinPark(p *Package) []Finding {
	yielding := yieldingFuncs(p)

	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if !spinCandidate(p, loop) {
				return true
			}
			if loopCanYield(p, loop, yielding) {
				return true
			}
			out = append(out, Finding{
				Pos:     p.Fset.Position(loop.Pos()),
				Pass:    "spinpark",
				Message: "spin-wait loop never yields; bound the spin and escalate (runtime.Gosched, sleep, or park) so a stalled writer can be scheduled",
			})
			return true
		})
	}
	return out
}

// spinCandidate reports whether loop polls shared atomic state: an
// atomic load in the condition, or an unconditional loop with an atomic
// load in the body. A loop with a non-atomic condition terminates on its
// own terms (bounded counters, local predicates) and is out of scope.
func spinCandidate(p *Package, loop *ast.ForStmt) bool {
	if loop.Cond != nil {
		return exprHasAtomicLoad(p, loop.Cond)
	}
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isAtomicLoadCall(p, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprHasAtomicLoad reports whether e contains an atomic load call.
func exprHasAtomicLoad(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isAtomicLoadCall(p, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAtomicLoadCall matches x.f.Load() and atomic.LoadUint64(&x).
func isAtomicLoadCall(p *Package, call *ast.CallExpr) bool {
	if _, _, write, ok := atomicMethodCall(p.Info, call); ok {
		return !write
	}
	if op, ok := isAtomicPkgFunc(p.Info, call); ok {
		return len(op) >= 4 && op[:4] == "Load"
	}
	return false
}

// loopCanYield reports whether some construct in the loop (condition,
// post statement or body, excluding nested function literals) yields,
// parks, or makes lock-free progress.
func loopCanYield(p *Package, loop *ast.ForStmt, yielding map[*types.Func]bool) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if nodeYields(p, n, yielding) {
			found = true
			return false
		}
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	if loop.Post != nil && !found {
		ast.Inspect(loop.Post, check)
	}
	if !found {
		ast.Inspect(loop.Body, check)
	}
	return found
}

// nodeYields reports whether a single AST node is a yield/park/progress
// construct.
func nodeYields(p *Package, n ast.Node, yielding map[*types.Func]bool) bool {
	switch n := n.(type) {
	case *ast.SelectStmt:
		return true
	case *ast.SendStmt:
		return true
	case *ast.RangeStmt:
		// Ranging over a channel parks.
		if t, ok := p.Info.TypeOf(n.X).(*types.Chan); ok {
			_ = t
			return true
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			return true
		}
	case *ast.CallExpr:
		return callYields(p, n, yielding)
	}
	return false
}

// callYields classifies one call inside a spin loop.
func callYields(p *Package, call *ast.CallExpr, yielding map[*types.Func]bool) bool {
	// Yield/back-off primitives.
	if name, ok := pkgFuncCall(p.Info, call, "runtime"); ok {
		return name == "Gosched"
	}
	if name, ok := pkgFuncCall(p.Info, call, "time"); ok {
		return name == "Sleep" || name == "After" || name == "Tick"
	}
	// Read-modify-write atomics are lock-free progress (CAS retry loops:
	// a failed CAS means another thread advanced). A plain Store is not —
	// it typically sits on the success branch the spin never reaches.
	if _, name, write, ok := atomicMethodCall(p.Info, call); ok {
		return write && name != "Store"
	}
	if op, ok := isAtomicPkgFunc(p.Info, call); ok {
		if len(op) >= 4 && op[:4] == "Load" {
			return false
		}
		return len(op) < 5 || op[:5] != "Store"
	}
	// sync parking primitives: Mutex.Lock, RWMutex.RLock, WaitGroup.Wait,
	// Cond.Wait.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recvPkgPath(p.Info, sel) == "sync" {
			switch sel.Sel.Name {
			case "Lock", "RLock", "Wait":
				return true
			}
		}
	}
	// Everything else: resolve the callee.
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		// Builtins and conversions are pure; unresolvable calls (func
		// values, interface methods) are conservatively yielding.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isB := objOf(p.Info, id).(*types.Builtin); isB {
				return false
			}
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return false // conversion
		}
		return true
	}
	if fn.Pkg() == nil {
		return false // builtin-like (unsafe, error.Error)
	}
	if fn.Pkg() != p.Pkg {
		// Cross-package: assumed to yield, except the atomic loads and
		// pure helpers already classified above.
		if fn.Pkg().Path() == "sync/atomic" {
			return false
		}
		return true
	}
	return yielding[fn]
}

// pkgFuncCall reports whether call invokes a package-level function of
// the package imported from pkgPath, returning the function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// recvPkgPath returns the package path of the named type of a method
// call's receiver expression, or "".
func recvPkgPath(info *types.Info, sel *ast.SelectorExpr) string {
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// yieldingFuncs computes, to a fixpoint, the set of same-package
// functions that yield/park/progress on some path — the transitive
// closure runSpinPark consults for static same-package callees. The
// fixpoint mirrors updatelock's releasing-set walk.
func yieldingFuncs(p *Package) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}
	yielding := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if yielding[fn] {
				continue
			}
			does := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if does {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if nodeYields(p, n, yielding) {
					does = true
					return false
				}
				return true
			})
			if does {
				yielding[fn] = true
				changed = true
			}
		}
	}
	return yielding
}
