package mem

import (
	"sync"
	"testing"
)

func TestLineTableEncoding(t *testing.T) {
	var s uint64
	if LineWriterOf(s) != -1 {
		t.Fatalf("empty writer = %d", LineWriterOf(s))
	}
	s = LineWithWriter(s, 7)
	if LineWriterOf(s) != 7 {
		t.Fatalf("writer = %d, want 7", LineWriterOf(s))
	}
	s |= LineReaderBit(3)
	if LineWriterOf(s) != 7 || s&LineReaderBit(3) == 0 {
		t.Fatal("reader bit interfered with writer field")
	}
	s = LineWithWriter(s, 55)
	if LineWriterOf(s) != 55 || s&LineReaderBit(3) == 0 {
		t.Fatal("writer update lost reader bit")
	}
}

func TestLineTableSizing(t *testing.T) {
	for _, tc := range []struct{ words, lines int }{
		{1, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9},
	} {
		if got := NewLineTable(tc.words).Lines(); got != tc.lines {
			t.Errorf("NewLineTable(%d).Lines() = %d, want %d", tc.words, got, tc.lines)
		}
	}
	// Every address of a heap must map to a valid line.
	h := NewHeap(1000)
	lt := NewLineTable(h.Cap())
	if l := LineOf(Addr(h.Cap() - 1)); int(l) >= lt.Lines() {
		t.Fatalf("last address line %d out of range %d", l, lt.Lines())
	}
}

func TestLineTableSeqlock(t *testing.T) {
	lt := NewLineTable(64)
	if v := lt.Version(0); v != 0 {
		t.Fatalf("initial version = %d", v)
	}
	lt.BeginApply(0)
	if v := lt.Version(0); v%2 != 1 {
		t.Fatalf("version during apply = %d, want odd", v)
	}
	lt.EndApply(0)
	if v := lt.Version(0); v != 2 {
		t.Fatalf("version after apply = %d, want 2", v)
	}
	// Concurrent clock bumps are a plain atomic counter.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				lt.BumpClock()
			}
		}()
	}
	wg.Wait()
	if c := lt.Clock(); c != 4000 {
		t.Fatalf("clock = %d, want 4000", c)
	}
}
