package rococotm

import (
	"runtime"

	"rococotm/internal/mem"
	"rococotm/internal/sig"
)

// This file is the decoupled commit pipeline: publication helpers shared
// by both commit arms, the batched non-FT turn wait, and the out-of-order
// write-back phase with its WAW ordering wait.
//
// The ordered protocol serialized an entire redo-log drain per commit:
// committer seq+1 spun in awaitTurn until committer seq had stored its
// whole redo log and released GlobalTS, so commit throughput was bounded
// by one write-back at a time regardless of thread count. The pipeline
// splits Commit at the timestamp release:
//
//	publication (ordered)    commit-queue signature + aggregate blocks +
//	                         GlobalTS advance, in strict verdict-seq order;
//	write-back (unordered)   the redo-log drain, concurrent across
//	                         committers, guarded by the update-set entry.
//
// Safety rests on the update-set entry acting as a commit-time lock that
// outlives the timestamp release: active=1 is set before the commit-queue
// slot is published and cleared only after write-back completes, so a
// reader that could observe a pre-write-back heap word for a commit ≤ its
// snapshot necessarily sees the active signature (or a changed GlobalTS)
// in its line-5-7 probe and retries — exactly the spin it always ran.
// Write-after-write ordering between concurrent write-backs is restored
// by awaitWriters: a committer drains its redo log only after every
// active update-set entry with an earlier sequence and a possibly
// overlapping write signature has released.

// publishSlot publishes ws as commit seq's write signature in the
// commit-queue ring (seqlock: ver 2seq+1 while writing, 2seq+2 final).
//
//tm:hotpath
func (r *TM) publishSlot(seq uint64, ws sig.Sig) {
	slot := &r.commitQ[seq&uint64(r.cfg.CommitQueueSlots-1)]
	slot.ver.Store(2*seq + 1)
	for i, w := range ws.Words() {
		slot.words[i].Store(w)
	}
	slot.ver.Store(2*seq + 2)
}

// slotPublished reports whether commit seq's queue slot holds its final
// signature.
//
//tm:hotpath
func (r *TM) slotPublished(seq uint64) bool {
	return r.commitQ[seq&uint64(r.cfg.CommitQueueSlots-1)].ver.Load() == 2*seq+2
}

// advanceMax bounds how many successors one turn-holder publishes in a
// single group: the cap keeps the holder's time at the head of the chain
// bounded, so its own write-back is not starved by an endless stream of
// pre-published peers.
const advanceMax = 128

// awaitTurnFast is the publication wait of the decoupled pipeline (non-FT,
// no observer): the commit-queue slot is already pre-published, so the
// committer only needs GlobalTS to reach — or pass — its sequence. The
// exact turn-holder extends the release over every contiguously
// pre-published successor, builds the aggregate blocks the group
// completes, and advances GlobalTS past the whole group with one store: K
// waiting committers are released by one writer instead of K serialized
// handoffs.
//
//tm:hotpath
func (r *TM) awaitTurnFast(seq uint64) {
	for spin := 0; ; spin++ {
		ts := r.globalTS.Load()
		if ts > seq {
			return // a predecessor published our commit with its group
		}
		if ts == seq {
			end := seq
			for end-seq < advanceMax && r.slotPublished(end+1) {
				end++
			}
			for q := seq; q <= end; q++ {
				r.publishAggregates(q)
			}
			r.globalTS.Store(end + 1)
			return
		}
		if spin > 8 {
			runtime.Gosched()
		}
	}
}

// writeBack drains x's redo log into the heap — the unordered phase of the
// pipeline — preceded by the WAW wait. wbInflight/wbPeak track how many
// write-backs overlap (Stats.CommitPipelinePeak).
//
//tm:hotpath
func (r *TM) writeBack(x *txn, seq uint64) {
	n := uint64(r.wbInflight.Add(1))
	for {
		peak := r.wbPeak.Load()
		if n <= peak || r.wbPeak.CompareAndSwap(peak, n) {
			break
		}
	}
	r.awaitWriters(seq, x)
	hook := r.cfg.WritebackHook
	lt := r.lt
	if lt != nil {
		// Announce the publication before any store lands — the LineTable
		// contract: a fast transaction that began before this bump and then
		// reads any of this write-back's stores also sees the clock moved,
		// so it revalidates its earlier read lines instead of silently
		// pairing a pre-drain read with a post-drain one. Fast transactions
		// that begin mid-drain miss the signal (their clock snapshot already
		// includes the bump); their commit-time validation — PublishFast's
		// drain scan + read-version check for updaters,
		// ValidateFastReadOnly for read-only commits — is the backstop that
		// keeps the half-applied state from ever committing.
		lt.BumpClock()
	}
	for i, a := range x.writeOrder {
		if hook != nil {
			hook(seq, i)
		}
		if lt == nil {
			r.heap.Store(a, x.redo[a])
			continue
		}
		// Hybrid coexistence: never store over a line a fast transaction
		// owns — its uncommitted eager store is there, and once the two
		// heap words interleave, neither an abort-restore nor a commit can
		// recover the right final value. Take the line with the slow
		// sentinel (dooming any fast owner out of the way), store, bump
		// the version so fast readers of the line revalidate, release.
		// Holding the sentinel across store+bump is what keeps a fast
		// acquisition from capturing a half-applied undo value.
		line := mem.LineOf(a)
		r.lockLineSlow(line)
		r.heap.Store(a, x.redo[a])
		lt.Bump(line)
		r.unlockLineSlow(line)
	}
	r.wbInflight.Add(-1)
}

// lockLineSlow takes a line's write ownership with the reserved slow-path
// writer id, dooming each fast owner it meets: the owner observes the doom
// at its next operation (or inside PublishFast) and rolls back, so the
// wait is bounded by one fast abort; a new owner arriving mid-spin is
// doomed in turn. Publications never wait on write-backs, so the global
// commit order keeps advancing while we spin — no cycle can form. Two
// slow write-backs never contend here: awaitWriters already serializes
// overlapping write sets.
//
//tm:hotpath
func (r *TM) lockLineSlow(line uint64) {
	own := r.lt.Own(line)
	for {
		s := own.Load()
		if w := mem.LineWriterOf(s); w >= 0 {
			if w < len(r.fastDoomed) {
				r.fastDoomed[w].Store(1)
			}
			runtime.Gosched()
			continue
		}
		if own.CompareAndSwap(s, mem.LineWithWriter(s, mem.LineSlowWriter)) {
			return
		}
	}
}

// unlockLineSlow releases a lockLineSlow hold, preserving reader bits.
//
//tm:hotpath
func (r *TM) unlockLineSlow(line uint64) {
	own := r.lt.Own(line)
	for {
		s := own.Load()
		if own.CompareAndSwap(s, mem.LineWithWriter(s, -1)) {
			return
		}
	}
}

// awaitWriters blocks until no in-flight write-back with an earlier
// sequence may touch x's write set — the write-after-write half of
// commit-time locking. Publication order guarantees every such entry was
// fully published (sequence, then words, then active) before our own
// timestamp release, so the scan can never miss an earlier writer; an
// entry that re-arms mid-scan carries a later sequence and is skipped.
// Waiting only on strictly smaller sequences keeps the wait graph acyclic,
// so the spin cannot deadlock: the smallest active sequence waits on
// nobody and always completes.
//
//tm:hotpath
func (r *TM) awaitWriters(seq uint64, x *txn) {
	for {
		wait := false
		for i := range r.updates {
			if i == x.thread {
				continue
			}
			u := &r.updates[i]
			if u.active.Load() != 1 || u.seq.Load() >= seq {
				continue
			}
			if r.writerMayOverlap(u, x.writeSig) {
				wait = true
				break
			}
		}
		if !wait {
			return
		}
		runtime.Gosched()
	}
}

// writerMayOverlap is sig.Intersects against the atomic words of an
// update-set entry: per-partition AND, exact on a false result.
//
//tm:hotpath
func (r *TM) writerMayOverlap(u *updateSlot, s sig.Sig) bool {
	w := s.Words()
	pw := r.sigPW
	for p := 0; p < len(w); p += pw {
		acc := uint64(0)
		for i := p; i < p+pw; i++ {
			acc |= w[i] & u.words[i].Load()
		}
		if acc == 0 {
			return false
		}
	}
	return true
}
