package tm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rococotm/internal/mem"
)

func TestAbortErrorRoundTrip(t *testing.T) {
	err := Abort(ReasonCycle)
	reason, ok := IsAbort(err)
	if !ok || reason != ReasonCycle {
		t.Fatalf("IsAbort = (%q, %v)", reason, ok)
	}
	wrapped := fmt.Errorf("outer: %w", err)
	reason, ok = IsAbort(wrapped)
	if !ok || reason != ReasonCycle {
		t.Fatal("wrapped abort not recognized")
	}
	if _, ok := IsAbort(errors.New("plain")); ok {
		t.Fatal("plain error recognized as abort")
	}
	if _, ok := IsAbort(nil); ok {
		t.Fatal("nil recognized as abort")
	}
	if got := err.Error(); got != "tm: aborted (cycle)" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.OnStart()
	c.OnStart()
	c.OnStart()
	c.OnCommit(false)
	c.OnCommit(true)
	c.OnAbort(ReasonConflict)
	c.AddValidation(100 * time.Nanosecond)
	c.AddValidation(-5) // ignored
	c.AddModelValidation(640)
	s := c.Snapshot()
	if s.Starts != 3 || s.Commits != 2 || s.Aborts != 1 || s.ReadOnly != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Reasons[ReasonConflict] != 1 {
		t.Fatalf("reasons = %v", s.Reasons)
	}
	if s.ValidationNanos != 100 || s.ModelValidationNanos != 640 {
		t.Fatalf("validation nanos = %d/%d", s.ValidationNanos, s.ModelValidationNanos)
	}
	if got := s.AbortRate(); got != 1.0/3 {
		t.Fatalf("AbortRate = %g", got)
	}
	if (Stats{}).AbortRate() != 0 {
		t.Fatal("empty AbortRate not 0")
	}
}

func TestCountersAllReasons(t *testing.T) {
	var c Counters
	reasons := []string{ReasonConflict, ReasonCycle, ReasonWindow,
		ReasonCapacity, ReasonSpurious, ReasonFallback, ReasonEngine,
		ReasonExplicit, "other"}
	for _, r := range reasons {
		c.OnAbort(r)
	}
	s := c.Snapshot()
	if s.Aborts != uint64(len(reasons)) {
		t.Fatalf("aborts = %d", s.Aborts)
	}
	if s.Reasons[ReasonEngine] != 1 {
		t.Fatalf("engine = %d", s.Reasons[ReasonEngine])
	}
	// "other" folds into explicit.
	if s.Reasons[ReasonExplicit] != 2 {
		t.Fatalf("explicit = %d", s.Reasons[ReasonExplicit])
	}
}

func TestBackoffReasonClasses(t *testing.T) {
	if !hardReason(ReasonWindow) || !hardReason(ReasonEngine) {
		t.Fatal("window/engine must back off hard")
	}
	for _, r := range []string{ReasonConflict, ReasonCycle, ReasonCapacity,
		ReasonSpurious, ReasonFallback} {
		if hardReason(r) {
			t.Fatalf("%s must not back off hard", r)
		}
	}
	// Hard-reason waits sleep a bounded, non-zero duration even at huge
	// attempt counts (the shift must not overflow into zero or negative).
	var p BackoffPolicy
	p.fill()
	rg := newRNG()
	for _, attempt := range []int{1, 5, 20, 63, 1000} {
		start := time.Now()
		p.wait(&rg, ReasonEngine, attempt)
		if d := time.Since(start); d > time.Second {
			t.Fatalf("attempt %d slept %v, cap is %v", attempt, d, p.SleepCap)
		}
	}
	// Soft-reason waits never sleep; they spin at most SpinCap.
	start := time.Now()
	for attempt := 1; attempt <= 40; attempt++ {
		p.wait(&rg, ReasonConflict, attempt)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("soft backoff took %v", d)
	}
}

func TestRunBackoffCustomPolicy(t *testing.T) {
	m := &flakyTM{heap: mem.NewHeap(8), failLeft: 2}
	pol := BackoffPolicy{SpinBase: 1, SpinCap: 2,
		SleepBase: time.Microsecond, SleepCap: 2 * time.Microsecond}
	if err := RunBackoff(m, 0, pol, func(x Txn) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if m.begins != 3 {
		t.Fatalf("begins = %d, want 3", m.begins)
	}
}

// flakyTM aborts the first n commit attempts, then succeeds — for testing
// the Run retry loop without a real runtime.
type flakyTM struct {
	heap      *mem.Heap
	failLeft  int
	begins    int
	abortCall int
	cnt       Counters
}

type flakyTxn struct{ m *flakyTM }

func (m *flakyTM) Name() string    { return "flaky" }
func (m *flakyTM) Heap() *mem.Heap { return m.heap }
func (m *flakyTM) Stats() Stats    { return m.cnt.Snapshot() }
func (m *flakyTM) Close()          {}
func (m *flakyTM) Begin(int) (Txn, error) {
	m.begins++
	return &flakyTxn{m: m}, nil
}
func (m *flakyTM) Commit(Txn) error {
	if m.failLeft > 0 {
		m.failLeft--
		return Abort(ReasonConflict)
	}
	return nil
}
func (m *flakyTM) Abort(Txn) { m.abortCall++ }

func (x *flakyTxn) Read(a mem.Addr) (mem.Word, error)  { return x.m.heap.Load(a), nil }
func (x *flakyTxn) Write(a mem.Addr, v mem.Word) error { x.m.heap.Store(a, v); return nil }

func TestRunRetriesOnConflict(t *testing.T) {
	m := &flakyTM{heap: mem.NewHeap(8), failLeft: 3}
	err := Run(m, 0, func(x Txn) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if m.begins != 4 {
		t.Fatalf("begins = %d, want 4 (3 retries)", m.begins)
	}
	if m.abortCall != 0 {
		t.Fatal("Run called Abort for runtime-rolled-back attempts")
	}
}

func TestRunPropagatesAppError(t *testing.T) {
	m := &flakyTM{heap: mem.NewHeap(8)}
	sentinel := errors.New("app failure")
	err := Run(m, 0, func(x Txn) error { return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if m.begins != 1 {
		t.Fatalf("begins = %d; app errors must not be retried", m.begins)
	}
	if m.abortCall != 1 {
		t.Fatal("Run must roll back on app error")
	}
}

func TestRunRetriesAbortFromBody(t *testing.T) {
	m := &flakyTM{heap: mem.NewHeap(8)}
	calls := 0
	err := Run(m, 0, func(x Txn) error {
		//lint:ignore tmlint/retrypure counting re-executions is the point of this test
		calls++
		if calls < 3 {
			return Abort(ReasonConflict) // e.g. a failed Read propagated
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("body ran %d times, want 3", calls)
	}
}
