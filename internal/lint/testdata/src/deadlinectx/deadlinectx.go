// Package deadlinectx is golden-test input for the deadlinectx pass.
package deadlinectx

import (
	"context"

	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// helper stands in for any context-aware sub-operation.
func helper(ctx context.Context) error { return ctx.Err() }

// freshBackground must be flagged: the helper runs under a root context,
// so the caller's per-request deadline never reaches it.
func freshBackground(ctx context.Context, m tm.TM) error {
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error {
		return helper(context.Background()) // want `\[deadlinectx\] context\.Background\(\) inside a tm\.RunCtx closure`
	})
}

// freshTODO: same defect through context.TODO and RunCtxBackoff.
func freshTODO(ctx context.Context, m tm.TM) error {
	return tm.RunCtxBackoff(ctx, m, 0, tm.BackoffPolicy{}, func(x tm.Txn) error {
		c := context.TODO() // want `\[deadlinectx\] context\.TODO\(\) inside a tm\.RunCtx closure`
		return helper(c)
	})
}

// derivedTimeout must be flagged even when wrapped: the WithTimeout chain
// is rooted at Background, not at the caller's context.
func derivedTimeout(ctx context.Context, m tm.TM) error {
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error {
		c, cancel := context.WithTimeout(context.Background(), 0) // want `\[deadlinectx\] context\.Background\(\) inside a tm\.RunCtx closure`
		defer cancel()
		return helper(c)
	})
}

// threadsCaller stays silent: the closure threads the caller's context.
func threadsCaller(ctx context.Context, m tm.TM, a mem.Addr) error {
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error {
		if err := helper(ctx); err != nil {
			return err
		}
		_, err := x.Read(a)
		return err
	})
}

// derivesFromCaller stays silent: deriving from the threaded context
// preserves the deadline chain.
func derivesFromCaller(ctx context.Context, m tm.TM) error {
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error {
		c, cancel := context.WithCancel(ctx)
		defer cancel()
		return helper(c)
	})
}

// outsideClosure stays silent: a root context built before entering the
// atomic block is the caller's own business.
func outsideClosure(m tm.TM) error {
	ctx := context.Background()
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error { return nil })
}

// detachedGoroutine stays silent: nested function literals run on their
// own schedule and may legitimately want a detached context.
func detachedGoroutine(ctx context.Context, m tm.TM, done chan error) error {
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error {
		go func() {
			done <- helper(context.Background())
		}()
		return nil
	})
}

// suppressed stays silent via directive.
func suppressed(ctx context.Context, m tm.TM) error {
	return tm.RunCtx(ctx, m, 0, func(x tm.Txn) error {
		//lint:ignore tmlint/deadlinectx fixture exercises suppression
		return helper(context.Background())
	})
}
