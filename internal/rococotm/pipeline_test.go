package rococotm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rococotm/internal/audit"
	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// TestPipelinedWritebackNoTornReads is the decoupled-pipeline stress test:
// a tiny commit queue keeps committers colliding, and a WritebackHook
// yields between every redo-log word so write-backs are pinned mid-flight
// while the global timestamp has already moved past them. Writers maintain
// pair invariants (two words always equal); transactional readers must
// never observe a torn pair or a pre-write-back half. Run under -race this
// also checks the publication fences around the update-set entries.
func TestPipelinedWritebackNoTornReads(t *testing.T) {
	const (
		writers = 4
		readers = 3
		pairs   = 8
		txns    = 400
	)
	m := New(mem.NewHeap(1<<12), Config{
		CommitQueueSlots: 64,
		WritebackHook: func(seq uint64, word int) {
			// Widen the window between timestamp release and heap store:
			// with the pipeline decoupled this is exactly where a reader
			// could catch a stale word if the update-set lock were dropped
			// too early.
			runtime.Gosched()
		},
	})
	defer m.Close()
	base := m.Heap().MustAlloc(2 * pairs)
	lo := func(p int) mem.Addr { return base + mem.Addr(2*p) }
	hi := func(p int) mem.Addr { return base + mem.Addr(2*p+1) }

	var wg sync.WaitGroup
	var torn atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				p := (i + w) % pairs
				v := mem.Word(w*txns + i + 1)
				//lint:ignore tmlint/aborterr stress loop: a failed attempt is retried by the next iteration
				_ = tm.Run(m, w, func(x tm.Txn) error {
					if err := x.Write(lo(p), v); err != nil {
						return err
					}
					return x.Write(hi(p), v)
				})
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < txns*2; i++ {
				p := (i + rd) % pairs
				var a, b mem.Word
				//lint:ignore tmlint/aborterr stress loop: a failed attempt is retried by the next iteration
				if err := tm.Run(m, writers+rd, func(x tm.Txn) error {
					var err error
					if a, err = x.Read(lo(p)); err != nil {
						return err
					}
					b, err = x.Read(hi(p))
					return err
				}); err == nil && a != b {
					torn.Add(1)
				}
			}
		}(rd)
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn pair reads: a committed-but-unwritten update leaked to a reader", n)
	}
	st := m.Stats()
	if st.Commits == 0 {
		t.Fatal("stress made no progress")
	}
	if st.CommitPipelinePeak < 2 {
		t.Fatalf("CommitPipelinePeak = %d; pinned write-backs never overlapped — the pipeline did not decouple", st.CommitPipelinePeak)
	}
}

// TestOrderedWritebackBaselineStillSound runs the same invariant stress on
// the OrderedWriteback arm (the pre-pipeline protocol kept for the
// commitphase A/B): semantics must be identical, only the overlap differs.
func TestOrderedWritebackBaselineStillSound(t *testing.T) {
	m := New(mem.NewHeap(1<<12), Config{
		CommitQueueSlots: 64,
		OrderedWriteback: true,
	})
	defer m.Close()
	base := m.Heap().MustAlloc(4)
	var wg sync.WaitGroup
	var torn atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				v := mem.Word(w*1000 + i)
				//lint:ignore tmlint/aborterr stress loop: a failed attempt is retried by the next iteration
				_ = tm.Run(m, w, func(x tm.Txn) error {
					if err := x.Write(base, v); err != nil {
						return err
					}
					return x.Write(base+1, v)
				})
				var a, b mem.Word
				//lint:ignore tmlint/aborterr stress loop: a failed attempt is retried by the next iteration
				if err := tm.Run(m, w, func(x tm.Txn) error {
					var err error
					if a, err = x.Read(base); err != nil {
						return err
					}
					b, err = x.Read(base + 1)
					return err
				}); err == nil && a != b {
					torn.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn pair reads on the ordered baseline", n)
	}
}

// TestPinnedWritebackBlocksConflictingReader pins one committer's
// write-back on a gate while its timestamp is already released, and checks
// the two sides of the early-release contract directly: a reader of the
// written address cannot complete until the write-back lands (it must see
// the final value, never the old one at a post-commit snapshot), while a
// reader of a disjoint address sails through the pinned commit.
func TestPinnedWritebackBlocksConflictingReader(t *testing.T) {
	gate := make(chan struct{})
	armed := make(chan struct{})
	var arm atomic.Bool
	m := New(mem.NewHeap(1<<12), Config{
		WritebackHook: func(seq uint64, word int) {
			if arm.CompareAndSwap(true, false) {
				close(armed)
				<-gate
			}
		},
	})
	defer m.Close()
	target := m.Heap().MustAlloc(1)
	other := m.Heap().MustAlloc(1)

	arm.Store(true)
	done := make(chan error, 1)
	go func() {
		done <- tm.Run(m, 0, func(x tm.Txn) error {
			return x.Write(target, 77)
		})
	}()
	<-armed // committer has its timestamp released (or imminently) and is pinned mid-write-back

	// Disjoint reader: must not be blocked by the pinned write-back.
	if err := tm.Run(m, 1, func(x tm.Txn) error {
		_, err := x.Read(other)
		return err
	}); err != nil {
		t.Fatalf("disjoint read blocked behind a pinned write-back: %v", err)
	}

	// Conflicting reader: retried Runs must not return the pre-write-back
	// value once the commit is published. Collect until the gate opens.
	readerDone := make(chan mem.Word, 1)
	go func() {
		for {
			var v mem.Word
			err := tm.Run(m, 2, func(x tm.Txn) error {
				var err error
				v, err = x.Read(target)
				return err
			})
			//lint:ignore tmlint/aborterr spin-until-commit probe: aborts are the expected outcome while the write-back is pinned
			if err == nil {
				readerDone <- v
				return
			}
		}
	}()
	select {
	case v := <-readerDone:
		// The read committed before the write-back: with GlobalTS already
		// past the commit, the only legal value is the new one — seeing 0
		// here means the update-set lock released early.
		if v != 77 {
			t.Fatalf("reader observed pre-write-back value %d at a post-commit snapshot", v)
		}
	case <-time.After(50 * time.Millisecond):
		// Blocking until the write-back lands is the expected outcome.
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("pinned commit failed: %v", err)
	}
	if v := <-readerDone; v != 77 {
		t.Fatalf("post-release read = %d, want 77", v)
	}
	if m.Heap().Load(target) != 77 {
		t.Fatal("write-back never landed")
	}
}

// TestPipelinedSoakAuditorClean is the auditor-wired soak of the pipelined
// path in unit-test form (the 60s chaos version lives in internal/bench):
// concurrent conflicting counters on the decoupled pipeline with pinned
// write-backs, every commit streamed to the serializability auditor, which
// must certify the history acyclic.
func TestPipelinedSoakAuditorClean(t *testing.T) {
	if err := audit.SelfTest(); err != nil {
		t.Fatalf("auditor self-test: %v", err)
	}
	auditor := audit.New(audit.Config{})
	m := New(mem.NewHeap(1<<12), Config{
		CommitQueueSlots: 128,
		Observer:         auditor,
		WritebackHook:    func(seq uint64, word int) { runtime.Gosched() },
	})
	defer m.Close()
	const threads, addrs = 6, 8
	base := m.Heap().MustAlloc(addrs)
	var wg sync.WaitGroup
	deadline := time.Now().Add(2 * time.Second)
	if testing.Short() {
		deadline = time.Now().Add(300 * time.Millisecond)
	}
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				a := base + mem.Addr((i+th)%addrs)
				b := base + mem.Addr((i*3+th)%addrs)
				//lint:ignore tmlint/aborterr soak loop: failed attempts are tolerated, the auditor judges the survivors
				_ = tm.Run(m, th, func(x tm.Txn) error {
					v, err := x.Read(a)
					if err != nil {
						return err
					}
					return x.Write(b, v+1)
				})
			}
		}(th)
	}
	wg.Wait()
	if err := auditor.Err(); err != nil {
		t.Fatalf("pipelined soak: %v", err)
	}
	if st := auditor.Stats(); st.Observed == 0 {
		t.Fatal("auditor observed no commits")
	}
}
