package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewHeapBounds(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHeap(%d) did not panic", n)
				}
			}()
			NewHeap(n)
		}()
	}
	h := NewHeap(2)
	if h.Cap() != 2 {
		t.Fatalf("Cap = %d", h.Cap())
	}
}

func TestLoadStore(t *testing.T) {
	h := NewHeap(16)
	h.Store(3, 42)
	if got := h.Load(3); got != 42 {
		t.Fatalf("Load = %d", got)
	}
	if got := h.Load(4); got != 0 {
		t.Fatalf("fresh word = %d", got)
	}
}

func TestCompareAndSwap(t *testing.T) {
	h := NewHeap(8)
	h.Store(1, 5)
	if !h.CompareAndSwap(1, 5, 6) {
		t.Fatal("CAS with matching old failed")
	}
	if h.CompareAndSwap(1, 5, 7) {
		t.Fatal("CAS with stale old succeeded")
	}
	if h.Load(1) != 6 {
		t.Fatal("CAS value wrong")
	}
}

func TestAllocNeverReturnsNil(t *testing.T) {
	h := NewHeap(64)
	for i := 0; i < 10; i++ {
		a, err := h.Alloc(4)
		if err != nil {
			t.Fatal(err)
		}
		if a == Nil {
			t.Fatal("Alloc returned the nil address")
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := NewHeap(10)
	if _, err := h.Alloc(9); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(1); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-3); err == nil {
		t.Fatal("Alloc(-3) succeeded")
	}
}

func TestMustAllocPanicsOnExhaustion(t *testing.T) {
	h := NewHeap(4)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc did not panic on exhaustion")
		}
	}()
	h.MustAlloc(100)
}

func TestConcurrentAllocDisjoint(t *testing.T) {
	h := NewHeap(1 << 16)
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	got := make([][]Addr, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a, err := h.Alloc(3)
				if err != nil {
					t.Error(err)
					return
				}
				got[w] = append(got[w], a)
			}
		}(w)
	}
	wg.Wait()
	seen := map[Addr]bool{}
	for _, as := range got {
		for _, a := range as {
			for off := Addr(0); off < 3; off++ {
				if seen[a+off] {
					t.Fatalf("overlapping allocation at %d", a+off)
				}
				seen[a+off] = true
			}
		}
	}
}

func TestSnapshot(t *testing.T) {
	h := NewHeap(16)
	for i := Addr(0); i < 5; i++ {
		h.Store(i, Word(i*i))
	}
	s := h.Snapshot(1, 3)
	if len(s) != 3 || s[0] != 1 || s[1] != 4 || s[2] != 9 {
		t.Fatalf("Snapshot = %v", s)
	}
}

func TestLineOf(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		return LineOf(addr) == uint64(a)/8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if LineOf(0) != 0 || LineOf(7) != 0 || LineOf(8) != 1 {
		t.Fatal("line boundaries wrong")
	}
}
