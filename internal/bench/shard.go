package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rococotm/internal/audit"
	"rococotm/internal/fpga"
	"rococotm/internal/mem"
	"rococotm/internal/mvstore"
	"rococotm/internal/rococotm"
	"rococotm/internal/tm"
	"rococotm/internal/wal"
)

// This file benchmarks the sharded validation plane: N engine instances,
// each owning a partition of the address space and its own publication
// order, with cross-shard transactions committed through the token
// protocol (internal/rococotm/shard.go). Three sweeps:
//
//   - engine scaling: shards ∈ {1,2,4} at a fixed thread count, all
//     traffic single-shard — the headline "does adding engines add
//     throughput" number. Speedup is relative to 1 engine.
//   - cross-shard fraction: throughput and abort rate as 0%/1%/10%/50%
//     of transactions span two shards — the price of the token.
//   - window ablation: W ∈ {64,128,256} × engines ∈ {1,2,4} — wide
//     windows (the block-partitioned reachability matrix) against the
//     sharding axis.
//
// The sweeps measure the real runtime, not the simclock model: genuine
// goroutines committing through genuine engines. On a single-core host
// the scaling rows still measure correctly but cannot show parallel
// speedup — the report prints GOMAXPROCS so the reader can judge.

// ShardScalingRow is one engine-count measurement.
type ShardScalingRow struct {
	Shards  int
	KTxnSec float64
	Speedup float64 // vs the 1-engine row
}

// ShardCrossRow is one cross-shard-fraction measurement.
type ShardCrossRow struct {
	CrossFrac float64
	KTxnSec   float64
	AbortRate float64
	Cross     rococotm.CrossStats
}

// ShardWindowRow is one (W, engines) measurement.
type ShardWindowRow struct {
	W       int
	Shards  int
	KTxnSec float64
}

// ShardBenchConfig parameterizes RunShardBench.
type ShardBenchConfig struct {
	Threads    int           // worker goroutines; default 4
	Duration   time.Duration // per measured cell; default 300ms
	ScaleSet   []int         // engine counts for the scaling sweep; default 1,2,4
	CrossFracs []float64     // default 0, 0.01, 0.10, 0.50
	Windows    []int         // default 64, 128, 256
}

func (c *ShardBenchConfig) fill() {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Millisecond
	}
	if len(c.ScaleSet) == 0 {
		c.ScaleSet = []int{1, 2, 4}
	}
	if len(c.CrossFracs) == 0 {
		c.CrossFracs = []float64{0, 0.01, 0.10, 0.50}
	}
	if len(c.Windows) == 0 {
		c.Windows = []int{64, 128, 256}
	}
}

// ShardBenchReport is the full sweep.
type ShardBenchReport struct {
	Cfg      ShardBenchConfig
	MaxProcs int
	Scaling  []ShardScalingRow
	CrossFR  []ShardCrossRow
	Window   []ShardWindowRow
	// CertifiedCommits is the size of the audit-wired soak's merged
	// history that CertifyMerged accepted (0 means the soak was skipped).
	CertifiedCommits int
}

// runShardCounter drives threads of read-modify-write transactions
// against a Sharded runtime for cfg.Duration and returns the commit
// throughput in ktxn/s plus the front-end stats. A transaction touches
// two counters: both on one (thread-preferred) shard, or — with
// probability crossFrac — one each on two distinct shards.
func runShardCounter(cfg ShardBenchConfig, shards, w int, crossFrac float64) (float64, tm.Stats, rococotm.CrossStats, error) {
	const slotsPerShard = 1 << 12
	heap := mem.NewHeap(slotsPerShard*shards + 64)
	scfg := rococotm.ShardedConfig{Shards: shards}
	if w != 0 {
		scfg.Shard.Engine = fpga.Config{W: w, QueueDepth: w}
	}
	s := rococotm.NewSharded(heap, scfg)
	defer s.Close()
	base := heap.MustAlloc(slotsPerShard * shards)

	// addr(sh, k) routes to shard sh under the default modulo route.
	addr := func(sh, k int) mem.Addr {
		return base + mem.Addr(k*shards+sh)
	}

	var stop atomic.Bool
	var commits atomic.Uint64
	var failure atomic.Pointer[error]
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th)*7919 + 1))
			local := uint64(0)
			for !stop.Load() {
				s0 := th % shards
				s1 := s0
				if shards > 1 && rng.Float64() < crossFrac {
					s1 = (s0 + 1 + rng.Intn(shards-1)) % shards
				}
				a0 := addr(s0, rng.Intn(slotsPerShard))
				a1 := addr(s1, rng.Intn(slotsPerShard))
				err := tm.Run(s, th, func(x tm.Txn) error {
					v0, err := x.Read(a0)
					if err != nil {
						return err
					}
					if err := x.Write(a0, v0+1); err != nil {
						return err
					}
					if a1 == a0 {
						return nil
					}
					v1, err := x.Read(a1)
					if err != nil {
						return err
					}
					return x.Write(a1, v1+1)
				})
				if err != nil {
					e := err
					failure.Store(&e)
					stop.Store(true)
					return
				}
				local++
			}
			commits.Add(local)
		}(th)
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if e := failure.Load(); e != nil {
		return 0, tm.Stats{}, rococotm.CrossStats{}, *e
	}
	k := float64(commits.Load()) / elapsed.Seconds() / 1000
	return k, s.Stats(), s.CrossStats(), nil
}

// bestShardRun is best-of-3: transient load only subtracts.
func bestShardRun(cfg ShardBenchConfig, shards, w int, crossFrac float64) (float64, tm.Stats, rococotm.CrossStats, error) {
	var bk float64
	var bs tm.Stats
	var bc rococotm.CrossStats
	for i := 0; i < 3; i++ {
		k, st, cs, err := runShardCounter(cfg, shards, w, crossFrac)
		if err != nil {
			return 0, tm.Stats{}, rococotm.CrossStats{}, err
		}
		if k > bk {
			bk, bs, bc = k, st, cs
		}
	}
	return bk, bs, bc, nil
}

// RunShardBench runs the three sweeps plus a short audit-wired soak whose
// merged cross-shard history must certify.
func RunShardBench(cfg ShardBenchConfig) (*ShardBenchReport, error) {
	cfg.fill()
	rep := &ShardBenchReport{Cfg: cfg, MaxProcs: runtime.GOMAXPROCS(0)}

	// Engine scaling, single-shard traffic only.
	var base float64
	for _, n := range cfg.ScaleSet {
		k, _, _, err := bestShardRun(cfg, n, 0, 0)
		if err != nil {
			return nil, err
		}
		if n == cfg.ScaleSet[0] {
			base = k
		}
		sp := 0.0
		if base > 0 {
			sp = k / base
		}
		rep.Scaling = append(rep.Scaling, ShardScalingRow{Shards: n, KTxnSec: k, Speedup: sp})
	}

	// Cross-shard fraction sweep at 2 engines.
	for _, f := range cfg.CrossFracs {
		k, st, cs, err := bestShardRun(cfg, 2, 0, f)
		if err != nil {
			return nil, err
		}
		rep.CrossFR = append(rep.CrossFR, ShardCrossRow{
			CrossFrac: f, KTxnSec: k, AbortRate: st.AbortRate(), Cross: cs,
		})
	}

	// Window ablation: W × engines.
	for _, w := range cfg.Windows {
		for _, n := range cfg.ScaleSet {
			k, _, _, err := bestShardRun(cfg, n, w, 0.10)
			if err != nil {
				return nil, err
			}
			rep.Window = append(rep.Window, ShardWindowRow{W: w, Shards: n, KTxnSec: k})
		}
	}

	n, err := runShardCertifiedSoak(cfg)
	if err != nil {
		return nil, err
	}
	rep.CertifiedCommits = n
	return rep, nil
}

// runShardCertifiedSoak re-runs a short mixed workload with per-shard
// auditors and WALs wired (which disables the fast turn path — hence a
// separate, unmeasured run) and certifies the merged history.
func runShardCertifiedSoak(cfg ShardBenchConfig) (int, error) {
	const shards = 2
	const iters = 200
	heap := mem.NewHeap(1 << 14)
	devs := make([]*wal.MemDevice, shards)
	durables := make([]*rococotm.Durable, shards)
	observers := make([]rococotm.CommitObserver, shards)
	auditors := make([]*audit.Auditor, shards)
	for i := range devs {
		devs[i] = wal.NewMemDevice(nil)
		d, _, err := rococotm.RecoverDurable(devs[i], heap,
			wal.Options{FlushInterval: 100 * time.Microsecond}, mvstore.Config{}, false)
		if err != nil {
			return 0, err
		}
		durables[i] = d
		auditors[i] = audit.New(audit.Config{})
		observers[i] = auditors[i]
	}
	s := rococotm.NewSharded(heap, rococotm.ShardedConfig{
		Shards: shards, Observers: observers, Durables: durables,
	})
	base := heap.MustAlloc(1 << 10)
	var wg sync.WaitGroup
	var failure atomic.Pointer[error]
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th) + 42))
			for i := 0; i < iters; i++ {
				a0 := base + mem.Addr(rng.Intn(1<<10))
				a1 := base + mem.Addr(rng.Intn(1<<10))
				err := tm.Run(s, th, func(x tm.Txn) error {
					v0, err := x.Read(a0)
					if err != nil {
						return err
					}
					if err := x.Write(a0, v0+1); err != nil {
						return err
					}
					if a1 == a0 {
						return nil
					}
					_, err = x.Read(a1)
					return err
				})
				if err != nil {
					e := err
					failure.Store(&e)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	s.Close()
	if e := failure.Load(); e != nil {
		return 0, *e
	}
	for i, a := range auditors {
		if err := a.Err(); err != nil {
			return 0, fmt.Errorf("shard %d auditor: %w", i, err)
		}
	}
	streams := make([][]audit.ShardRecord, shards)
	total := 0
	for i, dev := range devs {
		data, err := dev.Contents()
		if err != nil {
			return 0, err
		}
		res, err := wal.Replay(data)
		if err != nil {
			return 0, err
		}
		streams[i] = make([]audit.ShardRecord, len(res.Records))
		for k, r := range res.Records {
			streams[i][k] = audit.ShardRecord{
				Record:  audit.Record{Seq: r.Seq, ValidTS: r.ValidTS, Reads: r.Reads, Writes: r.WriteAddrs},
				XID:     r.XID,
				XShards: r.XShards,
			}
		}
		total += len(res.Records)
	}
	if err := audit.CertifyMerged(streams); err != nil {
		return 0, err
	}
	return total, nil
}

// String renders the three tables.
func (r *ShardBenchReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sharded validation plane (%d threads, %v per cell, best of 3, GOMAXPROCS=%d)\n",
		r.Cfg.Threads, r.Cfg.Duration, r.MaxProcs)
	if r.MaxProcs == 1 {
		sb.WriteString("NOTE: single-core host — engine scaling measures overhead, not parallel speedup.\n")
	}
	sb.WriteString("\nEngine scaling (single-shard traffic):\n")
	fmt.Fprintf(&sb, "%8s %12s %9s\n", "engines", "ktxn/s", "speedup")
	for _, row := range r.Scaling {
		fmt.Fprintf(&sb, "%8d %12.1f %8.2fx\n", row.Shards, row.KTxnSec, row.Speedup)
	}
	sb.WriteString("\nCross-shard fraction (2 engines):\n")
	fmt.Fprintf(&sb, "%8s %12s %11s %10s %10s %8s\n", "cross", "ktxn/s", "abort rate", "single", "cross", "fills")
	for _, row := range r.CrossFR {
		fmt.Fprintf(&sb, "%7.0f%% %12.1f %10.2f%% %10d %10d %8d\n",
			100*row.CrossFrac, row.KTxnSec, 100*row.AbortRate,
			row.Cross.SingleCommits, row.Cross.CrossCommits, row.Cross.NoopFills)
	}
	sb.WriteString("\nWindow ablation (10% cross-shard traffic):\n")
	fmt.Fprintf(&sb, "%6s %8s %12s\n", "W", "engines", "ktxn/s")
	for _, row := range r.Window {
		fmt.Fprintf(&sb, "%6d %8d %12.1f\n", row.W, row.Shards, row.KTxnSec)
	}
	if r.CertifiedCommits > 0 {
		fmt.Fprintf(&sb, "\nAudit-wired soak: merged stream of %d commits certified serializable.\n", r.CertifiedCommits)
	}
	return sb.String()
}
