module rococotm

go 1.22
