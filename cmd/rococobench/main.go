// Command rococobench regenerates the paper's tables and figures.
//
// Usage:
//
//	rococobench -exp <name>|all
//	            [-scale small|medium|large] [-app name] [-threads list] [-dur duration]
//	            [-cpuprofile file] [-memprofile file]
//
// The experiment names — the authoritative list is the experiments table
// below, which also drives the -exp usage string and the "all" order —
// are: fig6, fig7, fig9, fig10, fig11, resources, fault, soak, recover,
// transport, commitphase, shard, ablation-window, ablation-sig,
// ablation-contention.
//
// Each experiment prints a paper-style text table; EXPERIMENTS.md records
// the paper-vs-measured comparison. The profile flags capture pprof data
// over whichever experiments run — the workflow behind the transport
// optimization (profile, fix the hot allocation/probe, re-measure).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rococotm/internal/bench"
	"rococotm/internal/stamp"
)

// benchCtx carries the parsed flags into experiment runners.
type benchCtx struct {
	exp     string
	scale   stamp.Scale
	app     string
	threads []int
	dur     time.Duration
}

// experiments is the single source of truth for -exp: the usage string,
// the "all" sweep order, and the dispatch are all derived from this
// table. Add new experiments here and nowhere else.
var experiments = []struct {
	name string
	run  func(c benchCtx)
}{
	{"fig6", func(c benchCtx) {
		emit(bench.RunFig6(nil), nil)
	}},
	{"fig7", func(c benchCtx) {
		rep, err := bench.RunFig7(bench.DefaultFig7())
		emit(rep, err)
	}},
	{"fig9", func(c benchCtx) {
		rep, err := bench.RunFig9(bench.DefaultFig9())
		emit(rep, err)
	}},
	{"fig10", func(c benchCtx) {
		cfg := bench.DefaultFig10()
		cfg.Scale = c.scale
		if len(c.threads) > 0 {
			cfg.Threads = c.threads
		}
		if c.app != "" {
			cfg.Apps = []string{c.app}
		}
		rep, err := bench.RunFig10(cfg)
		emit(rep, err)
	}},
	{"fig11", func(c benchCtx) {
		cfg := bench.DefaultFig11()
		cfg.Scale = c.scale
		if c.app != "" {
			cfg.Apps = []string{c.app}
		}
		rep, err := bench.RunFig11(cfg)
		emit(rep, err)
	}},
	{"resources", func(c benchCtx) {
		rep, err := bench.RunResources(nil)
		emit(rep, err)
	}},
	{"fault", func(c benchCtx) {
		rep, err := bench.RunFaultBench(bench.FaultBenchConfig{})
		emit(rep, err)
	}},
	{"soak", func(c benchCtx) {
		d := c.dur
		if d == 0 && c.exp == "all" {
			d = 5 * time.Second // keep the full sweep tractable
		}
		rep, err := bench.RunSoak(bench.SoakConfig{Duration: d})
		emit(rep, err)
		if err == nil && rep.AuditErr != nil {
			fatal(rep.AuditErr)
		}
	}},
	{"recover", func(c benchCtx) {
		cfg := bench.RecoverBenchConfig{SoakDuration: c.dur}
		if c.exp == "all" {
			cfg.Cycles = 10
			if cfg.SoakDuration == 0 {
				cfg.SoakDuration = 2 * time.Second
			}
		}
		rep, err := bench.RunRecoverBench(cfg)
		emit(rep, err)
		if err == nil {
			if verr := rep.Err(); verr != nil {
				fatal(verr)
			}
		}
	}},
	{"transport", func(c benchCtx) {
		cfg := bench.TransportBenchConfig{Scale: c.scale}
		if c.app != "" {
			cfg.App = c.app
		}
		if len(c.threads) > 0 {
			cfg.Threads = c.threads[0]
		}
		rep, err := bench.RunTransportBench(cfg)
		emit(rep, err)
	}},
	{"commitphase", func(c benchCtx) {
		cfg := bench.CommitPhaseConfig{}
		if len(c.threads) > 0 {
			cfg.Threads = c.threads
		}
		rep, err := bench.RunCommitPhase(cfg)
		emit(rep, err)
	}},
	{"shard", func(c benchCtx) {
		cfg := bench.ShardBenchConfig{}
		if len(c.threads) > 0 {
			cfg.Threads = c.threads[0]
		}
		if c.dur != 0 {
			cfg.Duration = c.dur
		} else if c.exp == "all" {
			cfg.Duration = 100 * time.Millisecond
		}
		rep, err := bench.RunShardBench(cfg)
		emit(rep, err)
	}},
	{"ablation-window", func(c benchCtx) {
		rep, err := bench.RunWindowAblation(nil, 16, 16, 25)
		emit(rep, err)
	}},
	{"ablation-sig", func(c benchCtx) {
		apps := []string{"vacation", "genome"}
		if c.app != "" {
			apps = []string{c.app}
		}
		rep, err := bench.RunSigAblation(apps, c.scale, 8, nil)
		emit(rep, err)
	}},
	{"ablation-contention", func(c benchCtx) {
		rep, err := bench.RunContentionAblation(c.scale, 8)
		emit(rep, err)
	}},
}

func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

func main() {
	exp := flag.String("exp", "all",
		"experiment: "+strings.Join(experimentNames(), ", ")+", all")
	scaleFlag := flag.String("scale", "medium", "STAMP input scale: small, medium, large")
	app := flag.String("app", "", "restrict fig10/fig11 to one app")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts for fig10 (default 1,4,8,14,28)")
	dur := flag.Duration("dur", 0, "wall-clock duration for -exp soak, shard, and the -exp recover snapshot phase (default 60s; \"all\" uses 5s/2s)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		fatal(err)
	}
	ctx := benchCtx{exp: *exp, scale: scale, app: *app, threads: threads, dur: *dur}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *exp == "all" {
		for _, e := range experiments {
			e.run(ctx)
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.name == *exp {
			e.run(ctx)
			return
		}
	}
	fatal(fmt.Errorf("unknown experiment %q (known: %s)", *exp, strings.Join(experimentNames(), ", ")))
}

func parseScale(s string) (stamp.Scale, error) {
	switch s {
	case "small":
		return stamp.Small, nil
	case "medium":
		return stamp.Medium, nil
	case "large":
		return stamp.Large, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func emit(rep fmt.Stringer, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rococobench:", err)
	os.Exit(1)
}
