// Package hist is an allocation-conscious latency histogram for the
// serving and benchmark layers: fixed-size log-linear buckets over
// nanosecond durations, recorded with a single atomic increment, read out
// as p50/p99/p999 quantiles. A histogram is safe for concurrent Record
// from any number of goroutines; quantile reads are taken over an explicit
// Snapshot so a monitoring loop can diff two snapshots and compute
// windowed quantiles without stopping recorders.
//
// Bucketing is HDR-style log-linear: values are grouped by binary exponent
// and each exponent is subdivided into 16 linear sub-buckets, bounding the
// relative quantile error at ~±3% — far below what scheduling noise does
// to a tail latency — while keeping the whole histogram at a fixed 8 KiB
// of counters, no allocation per Record, and no locks anywhere.
package hist

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

const (
	// subBits subdivides each binary order of magnitude into 2^subBits
	// linear buckets.
	subBits = 4
	subs    = 1 << subBits
	// buckets covers exponents 0..63, each with subs sub-buckets.
	buckets = 64 * subs
)

// Histogram is a concurrent log-linear latency histogram.
type Histogram struct {
	counts [buckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// index maps a nanosecond value to its bucket.
//
//tm:hotpath
func index(ns uint64) int {
	if ns < subs {
		return int(ns) // exact buckets for the first 16 ns
	}
	e := bits.Len64(ns) - 1
	sub := (ns >> (uint(e) - subBits)) & (subs - 1)
	return e<<subBits + int(sub)
}

// lowerBound is the smallest value mapping to bucket i; with width it
// brackets the bucket's value range.
func lowerBound(i int) (lo, width uint64) {
	e := i >> subBits
	sub := uint64(i & (subs - 1))
	if e < subBits {
		// The exact low range (index maps ns < 16 to buckets 0..15; the
		// remaining e < subBits indexes are never produced).
		return uint64(i), 1
	}
	step := uint64(1) << (uint(e) - subBits)
	return (uint64(1) << uint(e)) + sub*step, step
}

// Record adds one duration observation. Negative durations clamp to zero.
//
//tm:hotpath
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[index(ns)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Snapshot is a point-in-time copy of a histogram's counters, cheap to
// subtract and query. The zero Snapshot is empty.
type Snapshot struct {
	counts [buckets]uint64
	total  uint64
	sumNs  uint64
}

// Snapshot copies the current counters. Concurrent recorders may land
// between bucket reads; the copy is still a valid histogram (each
// observation is either wholly in or wholly out of some later snapshot).
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	s.total = h.total.Load()
	s.sumNs = h.sumNs.Load()
	return s
}

// Sub returns the window s − prev: the observations recorded between the
// two snapshots. prev must be an earlier snapshot of the same histogram.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var out Snapshot
	for i := range s.counts {
		out.counts[i] = s.counts[i] - prev.counts[i]
	}
	out.total = s.total - prev.total
	out.sumNs = s.sumNs - prev.sumNs
	return out
}

// Count returns the number of observations in the snapshot.
func (s Snapshot) Count() uint64 { return s.total }

// Mean returns the arithmetic mean, or 0 when empty.
func (s Snapshot) Mean() time.Duration {
	if s.total == 0 {
		return 0
	}
	return time.Duration(s.sumNs / s.total)
}

// Quantile returns the q-quantile (q in [0,1]) as a duration, using the
// midpoint of the containing bucket. Returns 0 when the snapshot is empty.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.total-1))
	var seen uint64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo, width := lowerBound(i)
			return time.Duration(lo + width/2)
		}
	}
	// Unreachable when total > 0; keep the compiler and the reader calm.
	return 0
}

// P50, P99 and P999 are the quantiles the serving layer reports.
func (s Snapshot) P50() time.Duration  { return s.Quantile(0.50) }
func (s Snapshot) P99() time.Duration  { return s.Quantile(0.99) }
func (s Snapshot) P999() time.Duration { return s.Quantile(0.999) }

// String renders the headline quantiles.
func (s Snapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%v p50=%v p99=%v p999=%v",
		s.total, s.Mean(), s.P50(), s.P99(), s.P999())
	return sb.String()
}
