package rococotm

import (
	"sync"
	"testing"

	"rococotm/internal/fpga"
	"rococotm/internal/mem"
	"rococotm/internal/tm"
	"rococotm/internal/tm/tmtest"
)

func factory() tm.TM {
	return New(mem.NewHeap(1<<16), Config{})
}

func TestReadYourWrites(t *testing.T) { tmtest.ReadYourWrites(t, factory) }
func TestAbortRollsBack(t *testing.T) { tmtest.AbortRollsBack(t, factory) }
func TestStatsSanity(t *testing.T)    { tmtest.StatsSanity(t, factory) }
func TestWriteSkew(t *testing.T)      { tmtest.WriteSkew(t, factory, 200) }

func TestCounterHammer(t *testing.T) {
	tmtest.CounterHammer(t, factory, 8, 200)
}

func TestBankInvariant(t *testing.T) {
	tmtest.BankInvariant(t, factory, 6, 32, 300)
}

func TestOpacityProbe(t *testing.T) {
	tmtest.OpacityProbe(t, factory, 6, 300)
}

func TestDisjointParallelism(t *testing.T) {
	tmtest.DisjointParallelism(t, factory, 8, 300)
}

func TestGlobalTSTracksEngine(t *testing.T) {
	m := New(mem.NewHeap(1<<12), Config{})
	defer m.Close()
	a := m.Heap().MustAlloc(8)
	for i := 0; i < 20; i++ {
		if err := tm.Run(m, 0, func(x tm.Txn) error {
			return x.Write(a+mem.Addr(i%8), mem.Word(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := m.GlobalTS(), uint64(m.Engine().NextSeq()); got != want {
		t.Fatalf("GlobalTS %d != engine NextSeq %d", got, want)
	}
	if m.GlobalTS() != 20 {
		t.Fatalf("GlobalTS = %d, want 20", m.GlobalTS())
	}
}

func TestReadOnlySkipsFPGA(t *testing.T) {
	m := New(mem.NewHeap(1<<12), Config{})
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	for i := 0; i < 10; i++ {
		if err := tm.Run(m, 0, func(x tm.Txn) error {
			_, err := x.Read(a)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.ReadOnly != 10 {
		t.Fatalf("read-only commits = %d, want 10", st.ReadOnly)
	}
	if got := m.Engine().Stats().Requests; got != 0 {
		t.Fatalf("read-only transactions reached the FPGA: %d requests", got)
	}
}

func TestStaleReadReordersInsteadOfAborting(t *testing.T) {
	// The headline behaviour: a transaction that read a version a later
	// commit overwrote — and never re-reads the overwritten data — commits
	// with a forward edge, where TinySTM (TOCC) must abort.
	m := New(mem.NewHeap(1<<12), Config{})
	defer m.Close()
	xAddr := m.Heap().MustAlloc(1)
	yAddr := m.Heap().MustAlloc(1)
	m.Heap().Store(xAddr, 10)

	t1, err := m.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := t1.Read(xAddr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("initial read = %d", v)
	}
	// A concurrent transaction overwrites x and commits.
	if err := tm.Run(m, 1, func(x tm.Txn) error {
		return x.Write(xAddr, 99)
	}); err != nil {
		t.Fatal(err)
	}
	// t1 writes y (disjoint) and commits: ROCoCo serializes t1 before the
	// x-writer.
	if err := t1.Write(yAddr, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t1); err != nil {
		t.Fatalf("stale-read transaction aborted: %v", err)
	}
	if m.Heap().Load(yAddr) != 7 || m.Heap().Load(xAddr) != 99 {
		t.Fatal("final state wrong")
	}
	if m.Stats().Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", m.Stats().Aborts)
	}
}

func TestCycleAbortsOnCPUOrFPGA(t *testing.T) {
	// t1 reads x stale AND overwrites y that the concurrent committer also
	// wrote: WAW forces t1 after it, the stale read forces t1 before it —
	// a cycle. Either the CPU's eager path or the FPGA must abort t1.
	m := New(mem.NewHeap(1<<12), Config{})
	defer m.Close()
	xAddr := m.Heap().MustAlloc(1)
	yAddr := m.Heap().MustAlloc(1)

	t1, _ := m.Begin(0)
	if _, err := t1.Read(xAddr); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(m, 1, func(x tm.Txn) error {
		if err := x.Write(xAddr, 1); err != nil {
			return err
		}
		return x.Write(yAddr, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(yAddr, 2); err != nil {
		t.Fatal(err)
	}
	err := m.Commit(t1)
	if _, ok := tm.IsAbort(err); !ok {
		t.Fatalf("cyclic transaction committed: %v", err)
	}
	// y must retain the committed writer's value.
	if m.Heap().Load(yAddr) != 1 {
		t.Fatalf("aborted writer leaked: y = %d", m.Heap().Load(yAddr))
	}
}

func TestMissSetAbortsTornSnapshot(t *testing.T) {
	// t1 reads x; a concurrent commit overwrites x and z; t1 then reads z:
	// z is in the miss set, so the CPU must abort eagerly (fast path, no
	// FPGA round trip).
	m := New(mem.NewHeap(1<<12), Config{})
	defer m.Close()
	xAddr := m.Heap().MustAlloc(1)
	zAddr := m.Heap().MustAlloc(1)

	t1, _ := m.Begin(0)
	if _, err := t1.Read(xAddr); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(m, 1, func(x tm.Txn) error {
		if err := x.Write(xAddr, 5); err != nil {
			return err
		}
		return x.Write(zAddr, 5)
	}); err != nil {
		t.Fatal(err)
	}
	before := m.Engine().Stats().Requests
	_, err := t1.Read(zAddr)
	if _, ok := tm.IsAbort(err); !ok {
		t.Fatalf("torn snapshot read returned %v", err)
	}
	if got := m.Engine().Stats().Requests; got != before {
		t.Fatal("eager abort went through the FPGA")
	}
}

func TestSnapshotExtensionOnDisjointCommits(t *testing.T) {
	// Commits that do not touch t1's read set must extend the snapshot,
	// letting t1 read their values and still commit cleanly.
	m := New(mem.NewHeap(1<<12), Config{})
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	b := m.Heap().MustAlloc(1)

	t1, _ := m.Begin(0)
	if _, err := t1.Read(a); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(m, 1, func(x tm.Txn) error { return x.Write(b, 42) }); err != nil {
		t.Fatal(err)
	}
	v, err := t1.Read(b)
	if err != nil {
		t.Fatalf("snapshot extension failed: %v", err)
	}
	if v != 42 {
		t.Fatalf("extended read = %d, want 42", v)
	}
	if err := t1.Write(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
}

func TestCommitQueueRingOverflow(t *testing.T) {
	// A transaction whose snapshot lags more than CommitQueueSlots commits
	// must abort with the window reason when it next reads.
	m := New(mem.NewHeap(1<<14), Config{CommitQueueSlots: 8})
	defer m.Close()
	a := m.Heap().MustAlloc(64)

	t1, _ := m.Begin(0)
	// Push 12 commits through (ring laps).
	for i := 0; i < 12; i++ {
		if err := tm.Run(m, 1, func(x tm.Txn) error {
			return x.Write(a+mem.Addr(i), 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := t1.Read(a + 63)
	reason, ok := tm.IsAbort(err)
	if !ok || reason != tm.ReasonWindow {
		t.Fatalf("lapped snapshot read returned %v", err)
	}
}

func TestWindowOverflowViaEngine(t *testing.T) {
	// With a tiny FPGA window, a transaction whose ValidTS lags beyond the
	// window base gets a window abort from the engine.
	m := New(mem.NewHeap(1<<14), Config{Engine: fpga.Config{W: 2}})
	defer m.Close()
	a := m.Heap().MustAlloc(64)

	t1, _ := m.Begin(0)
	// t1 reads a location that concurrent commits overwrite, so its
	// snapshot cannot be extended past them; enough commits then slide
	// the tiny window beyond t1's ValidTS.
	if _, err := t1.Read(a + 40); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(a+41, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tm.Run(m, 1, func(x tm.Txn) error {
			if err := x.Write(a+40, mem.Word(i)); err != nil {
				return err
			}
			return x.Write(a+mem.Addr(i), 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	err := m.Commit(t1)
	reason, ok := tm.IsAbort(err)
	if !ok || reason != tm.ReasonWindow {
		t.Fatalf("expected window abort, got %v", err)
	}
	if m.Stats().Reasons[tm.ReasonWindow] != 1 {
		t.Fatalf("window abort not counted: %v", m.Stats().Reasons)
	}
}

func TestValidationCounters(t *testing.T) {
	m := New(mem.NewHeap(1<<12), Config{MeasureValidation: true})
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	for i := 0; i < 10; i++ {
		if err := tm.Run(m, 0, func(x tm.Txn) error {
			v, err := x.Read(a)
			if err != nil {
				return err
			}
			return x.Write(a, v+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.ValidationNanos == 0 {
		t.Fatal("wall validation time not recorded")
	}
	if st.ModelValidationNanos == 0 {
		t.Fatal("modeled validation time not recorded")
	}
	// Modeled: ≥ 600 ns round trip per validated transaction.
	if st.ModelValidationNanos < 10*600 {
		t.Fatalf("modeled validation %d ns too small", st.ModelValidationNanos)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	// Writers increment disjoint-ish slots while readers sum; checks the
	// whole pipeline under real interleaving. Sum of all slots must equal
	// total increments at the end.
	m := New(mem.NewHeap(1<<16), Config{})
	defer m.Close()
	const slots = 16
	const perThread = 150
	base := m.Heap().MustAlloc(slots)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for th := 0; th < 6; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				slot := mem.Addr((th*7 + i) % slots)
				err := tm.Run(m, th, func(x tm.Txn) error {
					v, err := x.Read(base + slot)
					if err != nil {
						return err
					}
					return x.Write(base+slot, v+1)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var sum mem.Word
	for i := 0; i < slots; i++ {
		sum += m.Heap().Load(base + mem.Addr(i))
	}
	if sum != 6*perThread {
		t.Fatalf("sum = %d, want %d", sum, 6*perThread)
	}
	// Engine and CPU must agree on the commit count.
	if uint64(m.Engine().NextSeq()) != m.GlobalTS() {
		t.Fatal("engine/CPU commit counts diverged")
	}
}

func TestThreadRangeChecked(t *testing.T) {
	m := New(mem.NewHeap(1<<10), Config{MaxThreads: 2})
	defer m.Close()
	if _, err := m.Begin(2); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

func TestIrrevocableEscalation(t *testing.T) {
	// With IrrevocableAfter=2, a thread that keeps losing the same cycle
	// race escalates and must then commit (the gate freezes other
	// committers).
	m := New(mem.NewHeap(1<<14), Config{IrrevocableAfter: 2})
	defer m.Close()
	xAddr := m.Heap().MustAlloc(1)
	yAddr := m.Heap().MustAlloc(1)

	loseOnce := func() {
		t1, _ := m.Begin(0)
		if _, err := t1.Read(xAddr); err != nil {
			t.Fatal(err)
		}
		if err := tm.Run(m, 1, func(x tm.Txn) error {
			if err := x.Write(xAddr, 1); err != nil {
				return err
			}
			return x.Write(yAddr, 1)
		}); err != nil {
			t.Fatal(err)
		}
		if err := t1.Write(yAddr, 2); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(t1); err == nil {
			t.Fatal("expected cycle abort while warming up escalation")
		}
	}
	loseOnce()
	loseOnce()

	// Third attempt on thread 0 is irrevocable: a concurrent committer on
	// thread 1 must block until it finishes, and it must commit.
	t1, err := m.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(xAddr); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- tm.Run(m, 1, func(x tm.Txn) error { return x.Write(xAddr, 9) })
	}()
	if err := t1.Write(yAddr, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t1); err != nil {
		t.Fatalf("irrevocable transaction aborted: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Heap().Load(yAddr) != 7 || m.Heap().Load(xAddr) != 9 {
		t.Fatalf("final state x=%d y=%d", m.Heap().Load(xAddr), m.Heap().Load(yAddr))
	}
}

func TestIrrevocableHammerTerminates(t *testing.T) {
	// Maximal-contention counter with escalation enabled: must finish and
	// conserve. (Without irrevocability this is the §5.1 livelock shape.)
	m := New(mem.NewHeap(1<<12), Config{IrrevocableAfter: 4})
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	const threads, per = 6, 150
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tm.Run(m, th, func(x tm.Txn) error {
					v, err := x.Read(a)
					if err != nil {
						return err
					}
					return x.Write(a, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if got := m.Heap().Load(a); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
}

func TestIrrevocableAppAbortReleasesGate(t *testing.T) {
	m := New(mem.NewHeap(1<<12), Config{IrrevocableAfter: 1})
	defer m.Close()
	a := m.Heap().MustAlloc(1)
	// Force one conflict abort on thread 0 to arm escalation.
	t0, _ := m.Begin(0)
	if _, err := t0.Read(a); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(m, 1, func(x tm.Txn) error { return x.Write(a, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := t0.Write(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t0); err == nil {
		t.Fatal("expected conflict")
	}
	// Irrevocable attempt aborted by the application: the gate must be
	// released so others proceed.
	t1, _ := m.Begin(0)
	m.Abort(t1)
	if err := tm.Run(m, 1, func(x tm.Txn) error { return x.Write(a, 3) }); err != nil {
		t.Fatalf("gate leaked after app abort: %v", err)
	}
}

func TestHistorySerializableWriters(t *testing.T) {
	// Writers (RMW transactions) are validated by the engine and must be
	// serializable. Pure readers commit on the CPU at their snapshot
	// (§5.3) and are outside the windowed guarantee — see DESIGN.md — so
	// the recorded-history check scopes to writers.
	tmtest.HistorySerializable(t, factory, tmtest.HistoryOptions{Readers: false, Seed: 4})
}

func TestHistorySerializableWithReaders(t *testing.T) {
	// Including invisible readers: the paper's design commits them at
	// their snapshot. Under RMW-only writers the snapshot order embeds
	// into the commit order, so this passes too; it would only diverge
	// under blind-write reorderings (documented in DESIGN.md).
	tmtest.HistorySerializable(t, factory, tmtest.HistoryOptions{Readers: true, Seed: 5})
}

func TestRuntimeOnCycleLevelEngine(t *testing.T) {
	// The whole runtime (and by extension the STAMP suite, which the
	// integration matrix runs) works unchanged on the cycle-accurate
	// pipeline backend.
	mk := func() tm.TM {
		return New(mem.NewHeap(1<<16), Config{Engine: fpga.Config{CycleLevel: true}})
	}
	tmtest.BankInvariant(t, mk, 4, 16, 150)
	tmtest.CounterHammer(t, mk, 4, 100)
	tmtest.HistorySerializable(t, mk, tmtest.HistoryOptions{Readers: false, Seed: 9})
}

// TestSoak is a longer randomized stress run across all the runtime's
// moving parts (snapshot extension, miss sets, FPGA validation, commit
// ordering, irrevocability) with a conservation invariant at the end.
// Skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	m := New(mem.NewHeap(1<<18), Config{IrrevocableAfter: 32})
	defer m.Close()
	const slots = 64
	const threads = 8
	const perThread = 2500
	base := m.Heap().MustAlloc(slots)

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := th*2654435761 + 1
			next := func(n int) int {
				rng = rng*1103515245 + 12345
				v := (rng >> 16) % n
				if v < 0 {
					v = -v
				}
				return v
			}
			for i := 0; i < perThread; i++ {
				from := mem.Addr(next(slots))
				to := mem.Addr(next(slots))
				if err := tm.Run(m, th, func(x tm.Txn) error {
					fv, err := x.Read(base + from)
					if err != nil {
						return err
					}
					tv, err := x.Read(base + to)
					if err != nil {
						return err
					}
					if from == to {
						return nil
					}
					if err := x.Write(base+from, fv+1); err != nil {
						return err
					}
					return x.Write(base+to, tv-1)
				}); err != nil {
					errs <- err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var sum int64
	for i := 0; i < slots; i++ {
		sum += int64(m.Heap().Load(base + mem.Addr(i)))
	}
	if sum != 0 {
		t.Fatalf("conservation broken: sum = %d", sum)
	}
	if m.GlobalTS() != uint64(m.Engine().NextSeq()) {
		t.Fatal("CPU/engine commit counts diverged after soak")
	}
}
