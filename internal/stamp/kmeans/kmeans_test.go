package kmeans

import (
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/stamp"
	"rococotm/internal/stm/seqtm"
	"rococotm/internal/stm/tinystm"
	"rococotm/internal/tm"
)

func TestBadConfigRejected(t *testing.T) {
	a := New(Config{Points: 4, Clusters: 8, Dims: 2, Iterations: 1})
	if err := a.Setup(mem.NewHeap(a.HeapWords())); err == nil {
		t.Fatal("points < clusters accepted")
	}
}

func TestSequentialRun(t *testing.T) {
	a := NewAt(stamp.Small)
	res, err := stamp.Execute(a, func(h *mem.Heap) tm.TM { return seqtm.New(h) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := ConfigFor(stamp.Small)
	// One transaction per point per iteration.
	want := uint64(c.Points * c.Iterations)
	if res.TM.Commits != want {
		t.Fatalf("commits = %d, want %d", res.TM.Commits, want)
	}
}

func TestRunWithoutSetThreadsFails(t *testing.T) {
	a := NewAt(stamp.Small)
	h := mem.NewHeap(a.HeapWords())
	if err := a.Setup(h); err != nil {
		t.Fatal(err)
	}
	m := seqtm.New(h)
	defer m.Close()
	if err := a.Run(m, 0, 1); err == nil {
		t.Fatal("Run without SetThreads succeeded")
	}
}

func TestConcurrentConservation(t *testing.T) {
	a := NewAt(stamp.Small)
	if _, err := stamp.Execute(a, func(h *mem.Heap) tm.TM {
		return tinystm.New(h, tinystm.Config{})
	}, 6); err != nil {
		t.Fatal(err)
	}
}
