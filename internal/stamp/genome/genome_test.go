package genome

import (
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/rococotm"
	"rococotm/internal/stamp"
	"rococotm/internal/stm/seqtm"
	"rococotm/internal/tm"
)

func TestBadConfigRejected(t *testing.T) {
	for _, cfg := range []Config{
		{GeneLength: 8, SegLength: 16, Dup: 2},
		{GeneLength: 100, SegLength: 1, Dup: 2},
		{GeneLength: 100, SegLength: 40, Dup: 0},
	} {
		a := New(cfg)
		if err := a.Setup(mem.NewHeap(1 << 12)); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestKmerRoundTrip(t *testing.T) {
	a := New(Config{GeneLength: 64, SegLength: 8, Dup: 1, Seed: 1})
	if err := a.Setup(mem.NewHeap(a.HeapWords())); err != nil {
		t.Fatal(err)
	}
	// suffix(kmer(i)) must equal prefix(kmer(i+1)).
	for i := 0; i+a.cfg.SegLength < a.cfg.GeneLength; i++ {
		if a.suffixOf(a.kmer(i)) != a.prefixOf(a.kmer(i+1)) {
			t.Fatalf("overlap broken at %d", i)
		}
	}
}

func TestReconstructionSequential(t *testing.T) {
	a := NewAt(stamp.Small)
	if _, err := stamp.Execute(a, func(h *mem.Heap) tm.TM { return seqtm.New(h) }, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructionConcurrent(t *testing.T) {
	a := NewAt(stamp.Small)
	res, err := stamp.Execute(a, func(h *mem.Heap) tm.TM {
		return rococotm.New(h, rococotm.Config{})
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate inserts and claim misses are read-only commits; with
	// Dup=3 a majority of phase-1/2 transactions must be read-only.
	if res.TM.ReadOnly == 0 {
		t.Fatal("no read-only fast-path commits in genome (suspicious)")
	}
}
