// Package wal is the write-ahead log behind the durable commit pipeline:
// every committed write transaction is appended — at its publication
// point, so the log is in publication order by construction — as one
// checksummed, length-prefixed record stamped with the commit sequence,
// and a group-commit flusher makes batches of records durable with a
// single fsync.
//
// Record format (little-endian):
//
//	u32 payload length        u32 CRC-32C of payload
//	payload:
//	  u64 seq                 u64 validTS
//	  u64 xid                 u64 xshards
//	  u32 nReads              u32 nWrites
//	  nReads  × u64 read address
//	  nWrites × (u64 write address, u64 value)
//
// xid/xshards are zero for ordinary single-shard commits. A sharded
// deployment (internal/rococotm.Sharded) writes one log per shard; a
// cross-shard transaction appends a record to every shard log it touched,
// all carrying the same nonzero xid and the same xshards bitmask of
// participating shards, so recovery can detect a cross-shard commit torn
// across logs (present on some shards, lost on others) and cut every
// shard back to the last globally consistent prefix.
//
// The read footprint rides along so a recovered stream can be handed to
// the serializability auditor (internal/audit), not just replayed into
// state.
//
// Crash consistency is prefix-shaped: recovery scans the log from the
// start and stops at the first record whose header is incomplete, whose
// length is implausible, whose payload is truncated, or whose checksum
// fails — everything before that point is the intact prefix, everything
// after is the torn tail a crash (or a lying disk) left behind and is
// truncated away. Because appends happen in publication order and a
// group flush covers a contiguous range of sequences, the intact prefix
// is always a contiguous commit history: a sequence gap inside it is a
// writer bug, not a crash artifact, and Replay reports it as an error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// headerSize is the per-record framing overhead: u32 length + u32 CRC.
const headerSize = 8

// payloadFixed is the fixed part of a payload: seq, validTS, xid,
// xshards, two counts.
const payloadFixed = 8 + 8 + 8 + 8 + 4 + 4

// MaxRecordBytes bounds a single record's payload; a length header above
// it is treated as corruption (a torn length field must not send the
// scanner a gigabyte past the end of the log).
const MaxRecordBytes = 1 << 24

// castagnoli is the CRC-32C table (the checksum SSDs and filesystems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one committed write transaction as the log stores it.
type Record struct {
	// Seq is the commit's publication sequence; records in a log carry
	// strictly contiguous, increasing sequences.
	Seq uint64
	// ValidTS is the snapshot the engine validated the read set against —
	// retained so recovery can re-certify serializability.
	ValidTS uint64
	// XID is the cross-shard transaction id (0 for single-shard commits).
	// Every shard log a cross-shard transaction touches carries a record
	// with the same XID.
	XID uint64
	// XShards is the bitmask of shard indices participating in XID's
	// commit; recovery requires the XID present on every shard in the mask
	// or treats the commit as torn.
	XShards uint64
	// Reads is the read footprint (addresses).
	Reads []uint64
	// WriteAddrs and WriteVals are the write footprint, index-paired.
	WriteAddrs []uint64
	WriteVals  []uint64
}

// encodedLen returns the payload length of r.
func (r *Record) encodedLen() int {
	return payloadFixed + 8*len(r.Reads) + 16*len(r.WriteAddrs)
}

// EncodedSize returns the total on-device size of r (framing header plus
// payload) — the hook multi-log reconciliation uses to compute the byte
// offset of a record prefix without re-encoding it.
func (r *Record) EncodedSize() int { return headerSize + r.encodedLen() }

// appendEncoded appends r's framed encoding (header + payload) to buf.
func appendEncoded(buf []byte, r *Record) []byte {
	plen := r.encodedLen()
	start := len(buf)
	buf = append(buf, make([]byte, headerSize+plen)...)
	p := buf[start+headerSize:]
	binary.LittleEndian.PutUint64(p[0:], r.Seq)
	binary.LittleEndian.PutUint64(p[8:], r.ValidTS)
	binary.LittleEndian.PutUint64(p[16:], r.XID)
	binary.LittleEndian.PutUint64(p[24:], r.XShards)
	binary.LittleEndian.PutUint32(p[32:], uint32(len(r.Reads)))
	binary.LittleEndian.PutUint32(p[36:], uint32(len(r.WriteAddrs)))
	off := payloadFixed
	for _, a := range r.Reads {
		binary.LittleEndian.PutUint64(p[off:], a)
		off += 8
	}
	for i, a := range r.WriteAddrs {
		binary.LittleEndian.PutUint64(p[off:], a)
		binary.LittleEndian.PutUint64(p[off+8:], r.WriteVals[i])
		off += 16
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf
}

// decodeOne decodes the record at data[off:]. ok=false means the bytes at
// off do not hold an intact record — the torn-tail condition, never an
// error: the scanner stops there.
func decodeOne(data []byte, off int) (rec Record, next int, ok bool) {
	if off+headerSize > len(data) {
		return Record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	if plen < payloadFixed || plen > MaxRecordBytes || off+headerSize+plen > len(data) {
		return Record{}, 0, false
	}
	p := data[off+headerSize : off+headerSize+plen]
	if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
		return Record{}, 0, false
	}
	nr := int(binary.LittleEndian.Uint32(p[32:]))
	nw := int(binary.LittleEndian.Uint32(p[36:]))
	if payloadFixed+8*nr+16*nw != plen {
		return Record{}, 0, false
	}
	rec.Seq = binary.LittleEndian.Uint64(p[0:])
	rec.ValidTS = binary.LittleEndian.Uint64(p[8:])
	rec.XID = binary.LittleEndian.Uint64(p[16:])
	rec.XShards = binary.LittleEndian.Uint64(p[24:])
	cur := payloadFixed
	if nr > 0 {
		rec.Reads = make([]uint64, nr)
		for i := range rec.Reads {
			rec.Reads[i] = binary.LittleEndian.Uint64(p[cur:])
			cur += 8
		}
	}
	if nw > 0 {
		rec.WriteAddrs = make([]uint64, nw)
		rec.WriteVals = make([]uint64, nw)
		for i := range rec.WriteAddrs {
			rec.WriteAddrs[i] = binary.LittleEndian.Uint64(p[cur:])
			rec.WriteVals[i] = binary.LittleEndian.Uint64(p[cur+8:])
			cur += 16
		}
	}
	return rec, off + headerSize + plen, true
}

// Device is the byte store a Log writes through — the seam the disk-fault
// layer (internal/fault.Disk) interposes on. A Device is an append-only
// stream with explicit durability: bytes are not crash-safe until Sync
// returns nil.
type Device interface {
	// Append writes p at the end of the device. A short write is an error.
	Append(p []byte) error
	// Sync makes all previously appended bytes durable.
	Sync() error
	// Contents returns the device's current bytes (recovery's read path).
	Contents() ([]byte, error)
	// Truncate discards bytes at offset n and beyond (the torn-tail cut).
	Truncate(n int64) error
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Close releases the device.
	Close() error
}

// MemDevice is an in-memory Device for tests, benchmarks, and crash-image
// replay (fault.Disk.CrashImage produces the bytes a crash would leave;
// NewMemDevice turns them back into a recoverable device).
type MemDevice struct {
	mu   sync.Mutex
	data []byte
}

// NewMemDevice returns a MemDevice seeded with initial (which may be nil).
func NewMemDevice(initial []byte) *MemDevice {
	return &MemDevice{data: append([]byte(nil), initial...)}
}

// Append implements Device.
func (d *MemDevice) Append(p []byte) error {
	d.mu.Lock()
	d.data = append(d.data, p...)
	d.mu.Unlock()
	return nil
}

// Sync implements Device (memory is "durable" by definition).
func (d *MemDevice) Sync() error { return nil }

// Contents implements Device.
func (d *MemDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...), nil
}

// Truncate implements Device.
func (d *MemDevice) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n > int64(len(d.data)) {
		return fmt.Errorf("wal: truncate %d out of range [0,%d]", n, len(d.data))
	}
	d.data = d.data[:n]
	return nil
}

// Size implements Device.
func (d *MemDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.data)), nil
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// FileDevice is an os.File-backed Device.
type FileDevice struct {
	f *os.File
}

// OpenFile opens (creating if absent) a file-backed device at path.
func OpenFile(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) error {
	if _, err := d.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	n, err := d.f.Write(p)
	if err == nil && n != len(p) {
		return fmt.Errorf("wal: short write (%d of %d bytes)", n, len(p))
	}
	return err
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Contents implements Device.
func (d *FileDevice) Contents() ([]byte, error) {
	sz, err := d.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, sz)
	if _, err := d.f.ReadAt(buf, 0); err != nil && sz > 0 {
		return nil, err
	}
	return buf, nil
}

// Truncate implements Device.
func (d *FileDevice) Truncate(n int64) error { return d.f.Truncate(n) }

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// Options parameterizes a Log.
type Options struct {
	// FlushInterval is the group-commit period: the flusher writes and
	// fsyncs the buffered records at most this often (sooner when a
	// WaitDurable caller kicks it). Default 1ms.
	FlushInterval time.Duration
}

func (o *Options) fill() {
	if o.FlushInterval == 0 {
		o.FlushInterval = time.Millisecond
	}
}

// Stats is a snapshot of the log counters.
type Stats struct {
	Appends    uint64 // records appended
	Flushes    uint64 // device write+sync rounds that made progress
	SyncErrors uint64 // fsyncs that failed (durability did not advance)
	Bytes      uint64 // payload+header bytes appended
	DurableSeq uint64 // sequences < DurableSeq are fsync-durable
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is the group-commit writer. Append is called in publication order
// (the runtime's ordered commit phase serializes callers); the flusher
// goroutine drains the buffer to the device and fsyncs, advancing the
// durable horizon a batch at a time.
type Log struct {
	dev  Device
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte // encoded records not yet written to the device
	next     uint64 // next expected append sequence
	buffered uint64 // sequences < buffered are encoded (in buf or appended)
	appended uint64 // sequences < appended are written to the device
	failed   error  // sticky device-append failure
	closed   bool

	durable atomic.Uint64 // sequences < durable are fsync-durable

	appends, flushes, syncErrs, bytes atomic.Uint64

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// Open starts a Log appending to dev; next is the first sequence the log
// will accept (0 for a fresh log, Recover's NextSeq after a replay).
func Open(dev Device, next uint64, opts Options) *Log {
	opts.fill()
	l := &Log{
		dev:      dev,
		opts:     opts,
		next:     next,
		buffered: next,
		appended: next,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	l.durable.Store(next)
	l.wg.Add(1)
	go l.flusher()
	return l
}

// NextSeq returns the next sequence Append will accept.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// DurableSeq returns the durable horizon: sequences < DurableSeq have
// been fsynced.
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:    l.appends.Load(),
		Flushes:    l.flushes.Load(),
		SyncErrors: l.syncErrs.Load(),
		Bytes:      l.bytes.Load(),
		DurableSeq: l.durable.Load(),
	}
}

// Append encodes rec into the group-commit buffer. It must be called with
// contiguous sequences (rec.Seq == NextSeq) — the publication order the
// commit pipeline produces; a gap is a protocol bug and panics. Append
// returns without waiting for durability; pair it with WaitDurable for
// synchronous commits. rec's slices are not retained.
func (l *Log) Append(rec *Record) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if rec.Seq != l.next {
		l.mu.Unlock()
		panic(fmt.Sprintf("wal: append seq %d, want %d (publication order violated)", rec.Seq, l.next))
	}
	before := len(l.buf)
	l.buf = appendEncoded(l.buf, rec)
	l.next = rec.Seq + 1
	l.buffered = l.next
	l.appends.Add(1)
	l.bytes.Add(uint64(len(l.buf) - before))
	l.mu.Unlock()
	return nil
}

// Sync flushes the buffer and fsyncs, returning once every record
// appended before the call is durable (or the device failed).
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.buffered
	l.mu.Unlock()
	return l.WaitDurable(target)
}

// WaitDurable blocks until sequences < seq are fsync-durable. It kicks
// the flusher so a waiter is never parked for a full FlushInterval, and
// returns the sticky device error if the log can no longer make progress.
func (l *Log) WaitDurable(seq uint64) error {
	if l.durable.Load() >= seq {
		return nil
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable.Load() < seq {
		if l.failed != nil {
			return l.failed
		}
		if l.closed {
			return ErrClosed
		}
		l.cond.Wait()
	}
	return nil
}

// Close flushes, fsyncs, and stops the flusher. The device stays open
// (the caller owns it).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	l.flushOnce() // final drain after the flusher exited
	l.mu.Lock()
	err := l.failed
	if err == nil && l.durable.Load() < l.buffered {
		err = fmt.Errorf("wal: close: %d record(s) buffered but not durable",
			l.buffered-l.durable.Load())
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// flusher is the group-commit goroutine: every FlushInterval (or sooner,
// when a waiter kicks) it drains the buffer to the device and fsyncs.
func (l *Log) flusher() {
	defer l.wg.Done()
	tick := time.NewTicker(l.opts.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-l.kick:
		case <-tick.C:
		}
		l.flushOnce()
	}
}

// flushOnce writes the buffered bytes to the device and fsyncs. The
// append and the sync advance separate horizons: a failed fsync leaves
// the bytes on the device un-durable and is retried on the next round
// (durability is only claimed after a sync that returned nil).
func (l *Log) flushOnce() {
	l.mu.Lock()
	var batch []byte
	target := l.buffered
	if len(l.buf) > 0 {
		batch = l.buf
		l.buf = nil
	}
	syncTo := l.appended
	l.mu.Unlock()

	if batch != nil {
		if err := l.dev.Append(batch); err != nil {
			// A device write failure is terminal: the byte stream's tail
			// state is unknown, so no later append may land after the gap.
			l.mu.Lock()
			l.failed = fmt.Errorf("wal: device append: %w", err)
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		}
		syncTo = target
		l.mu.Lock()
		l.appended = target
		l.mu.Unlock()
	}
	if syncTo > l.durable.Load() {
		if err := l.dev.Sync(); err != nil {
			// Transient by contract: durability simply has not advanced;
			// the next round retries the sync over the same bytes.
			l.syncErrs.Add(1)
			return
		}
		l.durable.Store(syncTo)
		l.flushes.Add(1)
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// ReplayResult describes a scanned log.
type ReplayResult struct {
	// Records is the intact prefix, in publication order.
	Records []Record
	// IntactBytes is the byte length of the intact prefix.
	IntactBytes int64
	// TornBytes counts trailing bytes past the intact prefix (0 for a
	// cleanly closed log).
	TornBytes int64
	// NextSeq is the sequence after the last intact record (0 for an
	// empty log).
	NextSeq uint64
}

// Replay scans data from the start and returns the intact record prefix.
// The scan stops at the first torn or corrupt record — that is the crash
// boundary, not an error. A sequence discontinuity inside the intact
// prefix is an error: crashes tear tails, they do not reorder history.
func Replay(data []byte) (*ReplayResult, error) {
	res := &ReplayResult{}
	off := 0
	for {
		rec, next, ok := decodeOne(data, off)
		if !ok {
			break
		}
		if len(res.Records) > 0 && rec.Seq != res.NextSeq {
			return nil, fmt.Errorf("wal: sequence gap at byte %d: record %d follows %d",
				off, rec.Seq, res.NextSeq-1)
		}
		res.Records = append(res.Records, rec)
		res.NextSeq = rec.Seq + 1
		off = next
	}
	res.IntactBytes = int64(off)
	res.TornBytes = int64(len(data)) - int64(off)
	return res, nil
}

// Recover reads dev, replays the intact prefix, and truncates the torn
// tail so a subsequent Open appends cleanly after the last intact record.
func Recover(dev Device) (*ReplayResult, error) {
	data, err := dev.Contents()
	if err != nil {
		return nil, fmt.Errorf("wal: reading device: %w", err)
	}
	res, err := Replay(data)
	if err != nil {
		return nil, err
	}
	if res.TornBytes > 0 {
		if err := dev.Truncate(res.IntactBytes); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return res, nil
}
