package fault

import (
	"errors"
	"sync/atomic"
	"testing"

	"rococotm/internal/fpga"
	"rococotm/internal/rococotm"
)

// echoLink is a minimal inner link: every accepted request is answered OK
// immediately on its reply channel, and lifecycle calls count.
type echoLink struct {
	restarts atomic.Uint64
	crashes  atomic.Uint64
}

func (l *echoLink) TrySubmit(r fpga.Request) error {
	r.Reply <- fpga.Verdict{OK: true}
	return nil
}
func (l *echoLink) Restart(next uint64) error { l.restarts.Add(1); return nil }
func (l *echoLink) Crash()                    { l.crashes.Add(1) }
func (l *echoLink) Close()                    {}

var _ rococotm.Link = (*echoLink)(nil)

func submitOK(t *testing.T, l *Link) {
	t.Helper()
	if err := l.TrySubmit(fpga.Request{Reply: make(chan fpga.Verdict, 1)}); err != nil {
		t.Fatalf("TrySubmit: %v", err)
	}
}

// A Restart while the crash countdown is still armed must not reschedule
// the pending crash; only a Restart after the crash consumed the arming
// re-arms the countdown. (The recovery prober issues redundant Restarts —
// one per probe round plus one at promotion — and each used to push the
// next injected crash further out.)
func TestCrashRepeatRearmsOnlyWhenDisarmed(t *testing.T) {
	inner := &echoLink{}
	l := Wrap(inner, Schedule{CrashAfter: 3, CrashRepeat: true})
	defer l.Close()

	submitOK(t, l)
	submitOK(t, l)
	// Countdown is still armed (crash due at submission 3); a redundant
	// Restart must leave it in place.
	if err := l.Restart(0); err != nil {
		t.Fatal(err)
	}
	err := l.TrySubmit(fpga.Request{Reply: make(chan fpga.Verdict, 1)})
	if !errors.Is(err, fpga.ErrClosed) {
		t.Fatalf("3rd submission after redundant Restart = %v, want ErrClosed (injected crash)", err)
	}
	if got := l.Stats().Crashes; got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}

	// The crash disarmed the countdown; the next Restart re-arms it three
	// submissions out…
	if err := l.Restart(0); err != nil {
		t.Fatal(err)
	}
	submitOK(t, l) // 4
	// …and further redundant Restarts leave that new arming alone.
	if err := l.Restart(0); err != nil {
		t.Fatal(err)
	}
	submitOK(t, l) // 5
	err = l.TrySubmit(fpga.Request{Reply: make(chan fpga.Verdict, 1)})
	if !errors.Is(err, fpga.ErrClosed) {
		t.Fatalf("6th submission = %v, want ErrClosed (re-armed crash)", err)
	}
	if got := l.Stats().Crashes; got != 2 {
		t.Fatalf("Crashes = %d, want 2", got)
	}
	if got := inner.crashes.Load(); got != 2 {
		t.Fatalf("inner crashes = %d, want 2", got)
	}
}
