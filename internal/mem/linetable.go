package mem

import (
	"fmt"
	"sync/atomic"
)

// LineTable is the per-cache-line metadata the hybrid runtime shares
// between its uninstrumented fast path and the engine-validated slow path.
// Each line carries two words:
//
//   - an ownership word, encoded exactly like the HTM model's line state
//     (bits 0..55 a reader bitmap, bits 56..63 writer+1) — fast
//     transactions take encounter-time 2PL on it against each other, and
//     slow-path readers spin on a foreign writer so they never observe a
//     fast transaction's uncommitted eager stores;
//   - a version word, a per-line seqlock: odd while a committed fast
//     transaction (or an engine write-back) is applying its stores to the
//     line, bumped to a new even value when the stores are in place. Fast
//     readers record the even version at first read and revalidate it at
//     commit, which is what makes their uninstrumented reads serializable
//     against concurrent engine write-backs.
//
// A global version clock counts publications (fast or slow) that wrote
// anywhere; fast transactions re-check it on every read and revalidate
// their read lines when it moved, preserving opacity without read
// signatures.
type LineTable struct {
	own []atomic.Uint64
	ver []atomic.Uint64
	// clock counts store-visibility events: every fast publication and
	// every engine write-back bumps it once (before their line version
	// bumps become observable).
	clock atomic.Uint64
}

// LineWriterShift positions the writer+1 field in an ownership word; the
// encoding (and the 56-thread bound it implies) matches internal/htm.
const LineWriterShift = 56

// LineSlowWriter is the reserved writer id the slow path's write-back uses
// to hold a line for its store+version-bump window. It is far above any
// fast thread id (fast threads are bounded by the 56-bit reader bitmap),
// so a fast transaction meeting it treats the line as owned and backs off.
const LineSlowWriter = 254

// LineReaderBit returns thread's bit in the reader bitmap.
//
//tm:hotpath
func LineReaderBit(thread int) uint64 { return 1 << uint(thread) }

// LineWriterOf decodes the writer field: -1 means no writer.
//
//tm:hotpath
func LineWriterOf(s uint64) int { return int(s>>LineWriterShift) - 1 }

// LineWithWriter returns s with the writer field set to thread.
//
//tm:hotpath
func LineWithWriter(s uint64, thread int) uint64 {
	return (s & (1<<LineWriterShift - 1)) | uint64(thread+1)<<LineWriterShift
}

// NewLineTable returns a table covering every line of a heap with the
// given word capacity.
func NewLineTable(heapCap int) *LineTable {
	if heapCap < 1 {
		panic(fmt.Sprintf("mem: LineTable over %d words", heapCap))
	}
	n := (uint64(heapCap-1) >> LineShift) + 1
	return &LineTable{
		own: make([]atomic.Uint64, n),
		ver: make([]atomic.Uint64, n),
	}
}

// Lines returns the number of lines covered.
func (t *LineTable) Lines() int { return len(t.own) }

// Own returns the ownership word for line l (for CAS loops).
//
//tm:hotpath
func (t *LineTable) Own(l uint64) *atomic.Uint64 { return &t.own[l] }

// Version loads line l's seqlock version.
//
//tm:hotpath
func (t *LineTable) Version(l uint64) uint64 { return t.ver[l].Load() }

// BeginApply marks line l's version odd: stores to the line are in flight.
// Callers must hold the line's write ownership (or an equivalent exclusion
// like the slow path's commit turn), so the bump cannot race another bump.
//
//tm:hotpath
func (t *LineTable) BeginApply(l uint64) { t.ver[l].Add(1) }

// EndApply completes a BeginApply, leaving a new even version.
//
//tm:hotpath
func (t *LineTable) EndApply(l uint64) { t.ver[l].Add(1) }

// Bump advances line l's version by a full seqlock cycle in one step.
// It is parity-preserving, which is what the slow path's write-back must
// use: a fast transaction may own the line at that moment (its eager
// store was just clobbered; its validation will see the version move and
// roll back), and an odd/even toggle would corrupt its in-flight seqlock.
//
//tm:hotpath
func (t *LineTable) Bump(l uint64) { t.ver[l].Add(2) }

// Clock loads the global publication clock.
//
//tm:hotpath
func (t *LineTable) Clock() uint64 { return t.clock.Load() }

// BumpClock announces a publication: fast readers that started before the
// bump revalidate their lines before trusting further reads.
//
//tm:hotpath
func (t *LineTable) BumpClock() { t.clock.Add(1) }
