package rococotm

import (
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/sig"
	"rococotm/internal/tm"
)

// TestAggregateBlocksMatchUnions is the white-box correctness check of the
// aggregate signature ring: after a run of commits, every readable block at
// every level must equal the bitwise union of the per-commit write
// signatures it summarizes.
func TestAggregateBlocksMatchUnions(t *testing.T) {
	m := New(mem.NewHeap(1<<14), Config{CommitQueueSlots: 64})
	defer m.Close()
	base := m.Heap().MustAlloc(256)
	for i := 0; i < 200; i++ {
		if err := tm.Run(m, i%4, func(x tm.Txn) error {
			return x.Write(base+mem.Addr(i%256), mem.Word(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m.aggMax < 2 {
		t.Fatalf("aggMax = %d; test needs at least two aggregate levels", m.aggMax)
	}
	scfg := m.hasher.Config()
	got, want, one := sig.New(scfg), sig.New(scfg), sig.New(scfg)
	g := m.GlobalTS()
	for lvl := 1; lvl <= m.aggMax; lvl++ {
		size := uint64(1) << uint(lvl)
		checked := 0
		for lo := uint64(0); lo+size <= g; lo += size {
			if !m.loadAggSig(lvl, lo, got) {
				continue // lapped or never built at this level
			}
			want.Reset()
			members := true
			for ts := lo; ts < lo+size; ts++ {
				if !m.loadCommitSig(ts, one) {
					members = false // commit queue lapped under this block
					break
				}
				want.Union(one)
			}
			if !members {
				continue
			}
			gw, ww := got.Words(), want.Words()
			for i := range gw {
				if gw[i] != ww[i] {
					t.Fatalf("level %d block at %d: aggregate word %d = %#x, union of members = %#x",
						lvl, lo, i, gw[i], ww[i])
				}
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("level %d: no block was comparable", lvl)
		}
	}
}

// TestExtendFoldEquivalence runs the same deterministic serial workload —
// including a reader that lags hundreds of commits and must extend through
// the backlog — with the aggregate ring enabled and disabled. Outcomes
// (commit/abort verdicts, final heap state, stats) must be identical: the
// ring is an accelerator, not a semantic change.
func TestExtendFoldEquivalence(t *testing.T) {
	run := func(maxAggLevel int) (vals []mem.Word, commits, aborts uint64) {
		m := New(mem.NewHeap(1<<14), Config{MaxAggLevel: maxAggLevel})
		defer m.Close()
		base := m.Heap().MustAlloc(64)

		// A snapshot taken at ts 0 lags all subsequent commits.
		lag, err := m.Begin(7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lag.Read(base); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := tm.Run(m, i%4, func(x tm.Txn) error {
				return x.Write(base+mem.Addr(1+i%63), mem.Word(i))
			}); err != nil {
				t.Fatal(err)
			}
		}
		// The lagging reader now touches a fresh word: its extension folds
		// the 300-commit backlog (through aggregates when enabled). Its
		// read of base is never overwritten, so it must commit.
		if _, err := lag.Read(base + 1); err != nil {
			t.Fatalf("lagging read: %v", err)
		}
		if err := lag.Write(base, 999); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(lag); err != nil {
			t.Fatalf("lagging commit: %v", err)
		}
		for i := 0; i < 64; i++ {
			vals = append(vals, m.Heap().Load(base+mem.Addr(i)))
		}
		st := m.Stats()
		return vals, st.Commits, st.Aborts
	}

	withAgg, c1, a1 := run(0)
	without, c2, a2 := run(-1)
	if c1 != c2 || a1 != a2 {
		t.Fatalf("stats diverge: agg commits=%d aborts=%d, no-agg commits=%d aborts=%d", c1, a1, c2, a2)
	}
	for i := range withAgg {
		if withAgg[i] != without[i] {
			t.Fatalf("heap word %d: agg=%d no-agg=%d", i, withAgg[i], without[i])
		}
	}
}

// TestExtendFoldOverlapVerdictThroughAggregates checks the precision rule:
// when a true conflict hides inside an aggregate block, the fold must
// surface it (miss-set accumulation, then abort on touching the missed
// word) — and words outside the miss set must stay readable. The backlog is
// sized to a full level-3 block so the fold provably goes through the ring.
func TestExtendFoldOverlapVerdictThroughAggregates(t *testing.T) {
	m := New(mem.NewHeap(1<<14), Config{})
	defer m.Close()
	base := m.Heap().MustAlloc(64)

	// Reader snapshots ts 0 and reads word 0.
	lag, err := m.Begin(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lag.Read(base); err != nil {
		t.Fatal(err)
	}
	// 8 commits land, one of them overwriting word 0: a true overlap
	// buried in an aligned aggregate block.
	for i := 0; i < 8; i++ {
		w := base + mem.Addr(1+i)
		if i == 4 {
			w = base
		}
		if err := tm.Run(m, i%4, func(x tm.Txn) error {
			return x.Write(w, 123)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A word no commit touched: readable, and the extension it triggers
	// must report the overlap (miss-set), not silently extend past it.
	v, err := lag.Read(base + 40)
	if err != nil {
		t.Fatalf("lagged read: %v", err)
	}
	if v != 0 {
		t.Fatalf("untouched word = %d, want 0", v)
	}
	if !lag.(*txn).missAny {
		t.Fatal("conflict inside an aggregate block was not accumulated into the MissSet")
	}
	// Re-reading the overwritten word would tear the snapshot: must abort.
	if _, err := lag.Read(base); err == nil {
		t.Fatal("re-read of a MissSet word succeeded; snapshot would be torn")
	} else if reason, ok := tm.IsAbort(err); !ok || reason != tm.ReasonConflict {
		t.Fatalf("re-read aborted with %v, want %s", err, tm.ReasonConflict)
	}
}
