package tinystm

import (
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/tm"
	"rococotm/internal/tm/tmtest"
)

func factory() tm.TM {
	return New(mem.NewHeap(1<<16), Config{})
}

func TestReadYourWrites(t *testing.T) { tmtest.ReadYourWrites(t, factory) }
func TestAbortRollsBack(t *testing.T) { tmtest.AbortRollsBack(t, factory) }
func TestStatsSanity(t *testing.T)    { tmtest.StatsSanity(t, factory) }
func TestWriteSkew(t *testing.T)      { tmtest.WriteSkew(t, factory, 200) }

func TestCounterHammer(t *testing.T) {
	tmtest.CounterHammer(t, factory, 8, 300)
}

func TestBankInvariant(t *testing.T) {
	tmtest.BankInvariant(t, factory, 6, 32, 400)
}

func TestOpacityProbe(t *testing.T) {
	tmtest.OpacityProbe(t, factory, 6, 400)
}

func TestDisjointParallelism(t *testing.T) {
	tmtest.DisjointParallelism(t, factory, 8, 500)
}

func TestLockWordEncoding(t *testing.T) {
	for _, owner := range []int{0, 1, 27} {
		w := lockedWord(owner)
		if !isLocked(w) || ownerOf(w) != owner {
			t.Fatalf("owner %d: word %#x decodes to locked=%v owner=%d",
				owner, w, isLocked(w), ownerOf(w))
		}
	}
	for _, v := range []uint64{0, 1, 1 << 40} {
		w := versionWord(v)
		if isLocked(w) || versionOf(w) != v {
			t.Fatalf("version %d: word %#x decodes locked=%v version=%d",
				v, w, isLocked(w), versionOf(w))
		}
	}
}

func TestSnapshotExtension(t *testing.T) {
	// A read of a newly-committed stripe must extend the snapshot rather
	// than abort when the prior read set is untouched.
	h := mem.NewHeap(1 << 12)
	s := New(h, Config{})
	a := h.MustAlloc(1)
	b := h.MustAlloc(1)

	x, err := s.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Read(a); err != nil {
		t.Fatal(err)
	}
	// Concurrent commit to b bumps its stripe version past x's snapshot.
	if err := tm.Run(s, 1, func(y tm.Txn) error {
		return y.Write(b, 5)
	}); err != nil {
		t.Fatal(err)
	}
	v, err := x.Read(b)
	if err != nil {
		t.Fatalf("read after concurrent commit should extend, got %v", err)
	}
	if v != 5 {
		t.Fatalf("extended read = %d, want 5", v)
	}
	if err := s.Commit(x); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadAborts(t *testing.T) {
	// If the extension fails because the read set itself was overwritten,
	// the reader must abort (TOCC behaviour ROCoCo later relaxes).
	h := mem.NewHeap(1 << 12)
	s := New(h, Config{})
	a := h.MustAlloc(1)
	b := h.MustAlloc(1)

	x, _ := s.Begin(0)
	if _, err := x.Read(a); err != nil {
		t.Fatal(err)
	}
	// Concurrent commit overwrites a (x's read set) and b.
	if err := tm.Run(s, 1, func(y tm.Txn) error {
		if err := y.Write(a, 1); err != nil {
			return err
		}
		return y.Write(b, 1)
	}); err != nil {
		t.Fatal(err)
	}
	_, err := x.Read(b)
	if _, ok := tm.IsAbort(err); !ok {
		t.Fatalf("stale read did not abort: %v", err)
	}
	st := s.Stats()
	if st.Reasons[tm.ReasonConflict] == 0 {
		t.Fatal("abort not attributed to conflict")
	}
}

func TestWWConflictAborts(t *testing.T) {
	h := mem.NewHeap(1 << 12)
	s := New(h, Config{})
	a := h.MustAlloc(1)

	x, _ := s.Begin(0)
	if err := x.Write(a, 1); err != nil {
		t.Fatal(err)
	}
	// y commits a write to the same stripe first.
	if err := tm.Run(s, 1, func(y tm.Txn) error { return y.Write(a, 2) }); err != nil {
		t.Fatal(err)
	}
	// x never read a, so commit succeeds (blind write, last-writer-wins
	// is fine for serializability) — but if x had READ a it must abort.
	if err := s.Commit(x); err != nil {
		t.Fatalf("blind write-write commit failed: %v", err)
	}

	x2, _ := s.Begin(0)
	if _, err := x2.Read(a); err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(s, 1, func(y tm.Txn) error { return y.Write(a, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := x2.Write(a, 4); err != nil {
		t.Fatal(err)
	}
	err := s.Commit(x2)
	if _, ok := tm.IsAbort(err); !ok {
		t.Fatalf("read-modify-write with stale read committed: %v", err)
	}
}

func TestValidationTimer(t *testing.T) {
	h := mem.NewHeap(1 << 12)
	s := New(h, Config{MeasureValidation: true})
	a := h.MustAlloc(4)
	for i := 0; i < 20; i++ {
		if err := tm.Run(s, 0, func(x tm.Txn) error {
			for j := 0; j < 4; j++ {
				v, err := x.Read(a + mem.Addr(j))
				if err != nil {
					return err
				}
				if err := x.Write(a+mem.Addr(j), v+1); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().ValidationNanos == 0 {
		t.Fatal("MeasureValidation recorded nothing")
	}
}

func TestBadStripesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two stripes accepted")
		}
	}()
	New(mem.NewHeap(1<<10), Config{Stripes: 1000})
}

func BenchmarkReadWriteTxn(b *testing.B) {
	h := mem.NewHeap(1 << 16)
	s := New(h, Config{})
	a := h.MustAlloc(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := tm.Run(s, 0, func(x tm.Txn) error {
			v, err := x.Read(a + mem.Addr(i%64))
			if err != nil {
				return err
			}
			return x.Write(a+mem.Addr((i+1)%64), v+1)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestHistorySerializable(t *testing.T) {
	tmtest.HistorySerializable(t, factory, tmtest.HistoryOptions{Readers: true, Seed: 1})
}
