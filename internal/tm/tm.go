// Package tm defines the transactional-memory API shared by every runtime
// in this repository (TinySTM-like LSA, the TSX-like HTM model, the
// sequential baseline, and ROCoCoTM) and the retry loop applications use.
//
// The programming model mirrors the paper's: applications mark atomic
// blocks and perform word-granular transactional loads and stores inside
// them; the runtime is free to abort and re-execute a block at any point,
// which it signals by returning a conflict error from Read/Write/Commit.
// Application code must propagate those errors outward (the Run helper then
// retries); swallowing them would break opacity.
package tm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"rococotm/internal/mem"
)

// Conflict reasons, carried by AbortError.
const (
	ReasonConflict = "conflict"   // R/W conflict with a concurrent transaction
	ReasonCycle    = "cycle"      // ROCoCo validation found a dependency cycle
	ReasonWindow   = "window"     // sliding-window overflow (§4.2)
	ReasonCapacity = "capacity"   // HTM cache-capacity overflow
	ReasonSpurious = "spurious"   // HTM micro-architectural abort
	ReasonFallback = "fallback"   // HTM aborted because the fallback lock was taken
	ReasonEngine   = "engine"     // validation engine unavailable (deadline miss, crash, recovery)
	ReasonWatchdog = "watchdog"   // runtime watchdog force-aborted a stuck transaction
	ReasonExplicit = "user-abort" // application requested abort
)

// AbortError signals that the enclosing transaction must be rolled back.
// Runtimes return it from Read/Write/Commit; Run retries the transaction.
type AbortError struct {
	Reason string
	Code   Code
}

// Error implements error.
func (e *AbortError) Error() string { return "tm: aborted (" + e.Reason + ")" }

// Abort returns an AbortError with the given reason. It allocates; hot
// paths use AbortCode, which returns a preallocated singleton.
func Abort(reason string) error { return &AbortError{Reason: reason, Code: reasonCode(reason)} }

// IsAbort reports whether err is (or wraps) a transactional abort, and
// returns the reason.
func IsAbort(err error) (string, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae.Reason, true
	}
	return "", false
}

// Txn is one transactional execution attempt. A Txn is used by a single
// goroutine. After any method returns an AbortError the transaction is
// dead: the only valid next step is to stop using it (Run handles this).
type Txn interface {
	// Read returns the word at a as of the transaction's snapshot.
	Read(a mem.Addr) (mem.Word, error)
	// Write buffers (or, in eager runtimes, performs) a word store.
	Write(a mem.Addr, v mem.Word) error
}

// TM is a transactional-memory runtime bound to a heap.
type TM interface {
	// Name identifies the runtime in experiment output.
	Name() string
	// Heap returns the shared heap this runtime manages.
	Heap() *mem.Heap
	// Begin starts a transaction attempt on the calling goroutine.
	// thread identifies the executing thread (0 ≤ thread < configured
	// maximum); runtimes use it for per-thread metadata.
	Begin(thread int) (Txn, error)
	// Commit attempts to commit the transaction. On AbortError the
	// transaction has been rolled back.
	Commit(t Txn) error
	// Abort rolls back an attempt (used for explicit aborts and when the
	// application function fails with a non-transactional error).
	Abort(t Txn)
	// Stats returns cumulative counters.
	Stats() Stats
	// Close releases background resources (e.g. the FPGA pipeline).
	Close()
}

// Snapshot is a consistent read-only view of committed state at a fixed
// commit height. Reads are infallible: a snapshot observes a prefix of the
// commit order and nothing a later commit writes, so there is nothing to
// validate and nothing to abort.
type Snapshot interface {
	// Read returns the word at a as of the snapshot's height.
	Read(a mem.Addr) mem.Word
}

// Snapshotter is implemented by runtimes that can serve read-only
// transactions from a pinned multi-version snapshot (ROCoCoTM with a
// durable store configured). Every retrieved snapshot must be released, or
// the runtime's version compaction stalls at its height.
type Snapshotter interface {
	// RetrieveSnapshot pins the current commit height and returns a
	// snapshot reading at it. An error means the runtime cannot serve
	// snapshots (not configured); callers fall back to a transaction.
	RetrieveSnapshot() (Snapshot, error)
	// ReleaseSnapshot unpins a snapshot returned by RetrieveSnapshot.
	ReleaseSnapshot(Snapshot)
}

// ErrReadOnlyWrite is returned by the Txn handed to RunReadOnly when the
// closure attempts a Write — a programming error, not a transactional
// abort, so the run fails instead of retrying.
var ErrReadOnlyWrite = errors.New("tm: write inside a read-only transaction")

// RunReadOnly executes fn as a read-only transaction. On runtimes that
// implement Snapshotter, fn runs against a pinned snapshot: its reads can
// never conflict, never spin on in-flight committers, and never abort, and
// the execution never enters the validation engine — it returns exactly
// fn's error, with no retry loop at all. Otherwise fn runs under Run as an
// ordinary transaction (whose empty write set commits on the CPU fast
// path). Either way, a Write inside fn fails the run with ErrReadOnlyWrite.
func RunReadOnly(m TM, thread int, fn func(Txn) error) error {
	if sp, ok := m.(Snapshotter); ok {
		if s, err := sp.RetrieveSnapshot(); err == nil {
			defer sp.ReleaseSnapshot(s)
			x := snapTxn{s: s}
			return fn(&x)
		}
	}
	return Run(m, thread, func(t Txn) error {
		return fn(roTxn{t})
	})
}

// snapTxn adapts a Snapshot to the Txn interface for RunReadOnly closures.
type snapTxn struct{ s Snapshot }

// Read delegates to the snapshot; it cannot fail.
//
//tm:hotpath
func (x *snapTxn) Read(a mem.Addr) (mem.Word, error) { return x.s.Read(a), nil }

// Write always fails: the transaction is read-only.
func (x *snapTxn) Write(mem.Addr, mem.Word) error { return ErrReadOnlyWrite }

// roTxn is the transactional fallback's write-rejecting wrapper, keeping
// RunReadOnly semantics identical on runtimes without snapshots.
type roTxn struct{ t Txn }

func (x roTxn) Read(a mem.Addr) (mem.Word, error) { return x.t.Read(a) }
func (x roTxn) Write(mem.Addr, mem.Word) error    { return ErrReadOnlyWrite }

// Stats are cumulative runtime counters, collected with atomics.
type Stats struct {
	Starts   uint64 // transaction attempts begun
	Commits  uint64 // attempts committed
	Aborts   uint64 // attempts aborted, any reason
	Reasons  map[string]uint64
	ReadOnly uint64 // commits that skipped validation (empty write set)
	// ValidationNanos accumulates time spent in commit-time validation —
	// the quantity Figure 11 reports per transaction.
	ValidationNanos uint64
	// ModelValidationNanos accumulates the *modeled* hardware validation
	// latency (pipeline cycles + CCI round trip) where a runtime offloads
	// validation; zero for pure-software runtimes.
	ModelValidationNanos uint64
	// ValidationBatches and ValidationBatchMax describe the validation
	// transport's drain-group occupancy where a runtime batches requests
	// to its engine: how many groups the engine drained and the largest
	// single group. Zero for runtimes (or transports) that submit one
	// request at a time.
	ValidationBatches  uint64
	ValidationBatchMax uint64
	// WatchdogFires counts transactions the runtime watchdog observed
	// stuck past the configured age; WatchdogKills counts how many of
	// those were force-aborted at their next safe point. Zero for
	// runtimes without a watchdog.
	WatchdogFires uint64
	WatchdogKills uint64
	// CommitPhase* break a write commit's wall-clock into the runtime's
	// pipeline phases (validation itself is ValidationNanos): final
	// snapshot extension, the wait for the commit turn, ordered
	// publication (signature + timestamp release), and the redo-log
	// write-back. Populated only when the runtime measures phases; zero
	// otherwise.
	CommitExtendNanos    uint64
	CommitAwaitNanos     uint64
	CommitPublishNanos   uint64
	CommitWritebackNanos uint64
	// CommitPipelinePeak is the high-water count of commits simultaneously
	// inside the write-back phase — >1 only when the runtime decouples
	// write-back from timestamp release. ValidationQueuePeak is the
	// high-water occupancy of the validation engine's submission queue at
	// drain time. Zero for runtimes without those pipelines.
	CommitPipelinePeak  uint64
	ValidationQueuePeak uint64
	// Per-path routing counters, populated by hybrid runtimes. A fast
	// attempt ends as exactly one FastCommit or FastAbort; SlowFallbacks
	// counts the fast aborts whose *next* attempt was routed to the slow
	// path (a routing demotion, not a new outcome class); Probations
	// counts slow→probe transitions where a demoted site re-tried the fast
	// path. The accounting identity Starts == Commits + Aborts holds per
	// path: FastCommits + FastAborts is the number of fast attempts, and
	// Commits - FastCommits the number of slow commits.
	FastCommits   uint64
	FastAborts    uint64
	SlowFallbacks uint64
	Probations    uint64
}

// AbortRate returns Aborts / Starts.
func (s Stats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// Counters is the embeddable atomic implementation of Stats that runtimes
// share.
type Counters struct {
	starts, commits, aborts, readOnly, valNanos atomic.Uint64
	modelValNanos                               atomic.Uint64
	reasonConflict, reasonCycle, reasonWindow   atomic.Uint64
	reasonCapacity, reasonSpurious              atomic.Uint64
	reasonFallback, reasonEngine                atomic.Uint64
	reasonWatchdog, reasonExplicit              atomic.Uint64
	extendNanos, awaitNanos                     atomic.Uint64
	publishNanos, writebackNanos                atomic.Uint64
	fastCommits, fastAborts                     atomic.Uint64
	slowFallbacks, probations                   atomic.Uint64
}

// OnStart records a transaction attempt.
func (c *Counters) OnStart() { c.starts.Add(1) }

// OnCommit records a successful commit; readOnly marks the fast path.
func (c *Counters) OnCommit(readOnly bool) {
	c.commits.Add(1)
	if readOnly {
		c.readOnly.Add(1)
	}
}

// OnAbort records an abort with its reason.
func (c *Counters) OnAbort(reason string) {
	c.aborts.Add(1)
	switch reason {
	case ReasonConflict:
		c.reasonConflict.Add(1)
	case ReasonCycle:
		c.reasonCycle.Add(1)
	case ReasonWindow:
		c.reasonWindow.Add(1)
	case ReasonCapacity:
		c.reasonCapacity.Add(1)
	case ReasonSpurious:
		c.reasonSpurious.Add(1)
	case ReasonFallback:
		c.reasonFallback.Add(1)
	case ReasonEngine:
		c.reasonEngine.Add(1)
	case ReasonWatchdog:
		c.reasonWatchdog.Add(1)
	default:
		c.reasonExplicit.Add(1)
	}
}

// OnFastCommit records that a committed attempt ran on the uninstrumented
// fast path (called alongside OnCommit, which still counts the commit).
//
//tm:hotpath
func (c *Counters) OnFastCommit() { c.fastCommits.Add(1) }

// OnFastAbort records that an aborted attempt ran on the fast path
// (called alongside OnAbort, which still counts the abort and its reason).
//
//tm:hotpath
func (c *Counters) OnFastAbort() { c.fastAborts.Add(1) }

// OnSlowFallback records a routing demotion: the attempt after a fast
// abort was sent to the slow path.
func (c *Counters) OnSlowFallback() { c.slowFallbacks.Add(1) }

// OnProbation records a slow→probe transition: a demoted site was granted
// a probing fast attempt.
func (c *Counters) OnProbation() { c.probations.Add(1) }

// AddValidation accumulates commit-time validation latency.
func (c *Counters) AddValidation(d time.Duration) {
	if d > 0 {
		c.valNanos.Add(uint64(d))
	}
}

// AddModelValidation accumulates modeled hardware validation latency.
func (c *Counters) AddModelValidation(nanos uint64) {
	c.modelValNanos.Add(nanos)
}

// AddCommitPhases accumulates one write commit's per-phase latencies.
func (c *Counters) AddCommitPhases(extend, await, publish, writeback time.Duration) {
	if extend > 0 {
		c.extendNanos.Add(uint64(extend))
	}
	if await > 0 {
		c.awaitNanos.Add(uint64(await))
	}
	if publish > 0 {
		c.publishNanos.Add(uint64(publish))
	}
	if writeback > 0 {
		c.writebackNanos.Add(uint64(writeback))
	}
}

// Snapshot materializes the counters as Stats.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Starts:   c.starts.Load(),
		Commits:  c.commits.Load(),
		Aborts:   c.aborts.Load(),
		ReadOnly: c.readOnly.Load(),
		Reasons: map[string]uint64{
			ReasonConflict: c.reasonConflict.Load(),
			ReasonCycle:    c.reasonCycle.Load(),
			ReasonWindow:   c.reasonWindow.Load(),
			ReasonCapacity: c.reasonCapacity.Load(),
			ReasonSpurious: c.reasonSpurious.Load(),
			ReasonFallback: c.reasonFallback.Load(),
			ReasonEngine:   c.reasonEngine.Load(),
			ReasonWatchdog: c.reasonWatchdog.Load(),
			ReasonExplicit: c.reasonExplicit.Load(),
		},
		ValidationNanos:      c.valNanos.Load(),
		ModelValidationNanos: c.modelValNanos.Load(),
		CommitExtendNanos:    c.extendNanos.Load(),
		CommitAwaitNanos:     c.awaitNanos.Load(),
		CommitPublishNanos:   c.publishNanos.Load(),
		CommitWritebackNanos: c.writebackNanos.Load(),
		FastCommits:          c.fastCommits.Load(),
		FastAborts:           c.fastAborts.Load(),
		SlowFallbacks:        c.slowFallbacks.Load(),
		Probations:           c.probations.Load(),
	}
}

// BackoffPolicy shapes the contention management of the Run retry loop:
// how long to wait between attempts, as a function of the abort reason and
// the attempt count. All waits are bounded exponentials with full jitter
// (the retry wave after a conflict or an engine outage must decorrelate,
// or every loser retries in lockstep and collides again).
//
// Abort reasons fall in two classes:
//
//   - soft (conflict, cycle, HTM capacity/spurious/fallback): the conflict
//     partner is another transaction that finishes in microseconds, so the
//     loop spins briefly and yields the processor;
//   - hard (window, engine): the transaction fell behind the sliding
//     window or the validation engine is unavailable — retrying
//     immediately hits the same wall, so the loop sleeps, doubling up to
//     SleepCap, giving a degraded engine time to fail over or recover.
type BackoffPolicy struct {
	// SpinBase is the busy-wait quantum for soft aborts; the k-th retry
	// spins a random amount up to SpinBase<<k (capped at SpinCap).
	// Default 32.
	SpinBase int
	// SpinCap bounds a single soft-abort spin. Default 4096.
	SpinCap int
	// SleepBase is the first sleep for hard aborts; the k-th consecutive
	// hard abort sleeps a random duration up to SleepBase<<k (capped at
	// SleepCap). Default 20µs.
	SleepBase time.Duration
	// SleepCap bounds a single hard-abort sleep. Default 2ms — the scale
	// of an engine crash/recover cycle, so a retrying writer re-probes a
	// few times per outage instead of thousands. Default 2ms.
	SleepCap time.Duration
	// EscalateAfter is the starvation budget: after this many consecutive
	// aborts of one logical transaction the retry loop asks the runtime
	// (if it implements Escalator) for a prioritized pessimistic turn, so
	// an abort storm cannot livelock a thread forever. Default 512;
	// negative disables escalation.
	EscalateAfter int
}

// DefaultBackoff is the policy Run uses.
var DefaultBackoff = BackoffPolicy{}

func (p *BackoffPolicy) fill() {
	if p.SpinBase == 0 {
		p.SpinBase = 32
	}
	if p.SpinCap == 0 {
		p.SpinCap = 4096
	}
	if p.SleepBase == 0 {
		p.SleepBase = 20 * time.Microsecond
	}
	if p.SleepCap == 0 {
		p.SleepCap = 2 * time.Millisecond
	}
	if p.EscalateAfter == 0 {
		p.EscalateAfter = 512
	}
}

// Escalator is implemented by runtimes that offer starved transactions a
// prioritized pessimistic turn (e.g. ROCoCoTM runs the next attempt of an
// escalated thread irrevocably, under the global gate). The retry loop
// calls Escalate after BackoffPolicy.EscalateAfter consecutive aborts;
// the effect applies to that thread's next Begin only.
type Escalator interface {
	Escalate(thread int)
}

// hardReason reports whether an abort reason indicates a condition that
// immediate retry cannot improve.
func hardReason(reason string) bool {
	return reason == ReasonWindow || reason == ReasonEngine
}

// rng is a per-retry-loop xorshift64* generator for backoff jitter. The
// global math/rand source funnels every backing-off thread through one
// locked state word — exactly the cross-thread coupling a contention
// manager must not reintroduce — so each Run loop carries its own.
type rng uint64

// rngSeq spaces seeds; splitmix64's increment guarantees well-mixed,
// distinct streams per loop without coordination.
var rngSeq atomic.Uint64

func newRNG() rng {
	z := rngSeq.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return rng(z)
}

// next returns a uniform uint64 (xorshift64*, never zero state).
func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// int63n returns a uniform int64 in [0, n); the modulo bias is far below
// what jittered backoff can observe.
func (r *rng) int63n(n int64) int64 { return int64(r.next() % uint64(n)) }

// wait blocks between attempt k (1-based count of consecutive aborts) and
// the next try, drawing jitter from the loop-local generator.
func (p BackoffPolicy) wait(rg *rng, reason string, attempt int) {
	if hardReason(reason) {
		d := p.SleepBase << uint(min(attempt-1, 16))
		if d > p.SleepCap || d <= 0 {
			d = p.SleepCap
		}
		// Full jitter over (0, d]: decorrelate the retry wave.
		time.Sleep(time.Duration(1 + rg.int63n(int64(d))))
		return
	}
	if attempt == 1 {
		return // first conflict retry is immediate: the winner is gone
	}
	for y := 0; y < attempt && y < 8; y++ {
		runtime.Gosched()
	}
	n := p.SpinBase << uint(min(attempt, 12))
	if n > p.SpinCap || n <= 0 {
		n = p.SpinCap
	}
	spin(int(rg.int63n(int64(n))))
}

// Run executes fn as a transaction on the given thread, retrying until it
// commits or fn fails with a non-transactional error. It implements the
// STAMP-style retry loop with DefaultBackoff contention management.
//
// Run is panic-safe: if fn panics (or exits via runtime.Goexit), the
// in-flight attempt is rolled back through TM.Abort — redo log discarded,
// txn/scratch/sub-signature recycled, any engine slot released — before
// the panic continues unwinding.
func Run(m TM, thread int, fn func(Txn) error) error {
	return runLoop(nil, m, thread, autoSite(m, 2), DefaultBackoff, fn)
}

// RunBackoff is Run with an explicit backoff policy.
func RunBackoff(m TM, thread int, pol BackoffPolicy, fn func(Txn) error) error {
	return runLoop(nil, m, thread, autoSite(m, 2), pol, fn)
}

// RunCtx is Run with cancellation: the context's deadline/cancel is
// observed at every transactional boundary — before each attempt begins,
// at each Read and Write inside fn, before validation (pre-commit), and
// after an aborted attempt before the retry. On cancellation the in-flight
// attempt is rolled back and ctx.Err() is returned; a committed attempt is
// never undone (cancellation between the commit point and return is
// reported as success, matching context convention: commit wins the race).
func RunCtx(ctx context.Context, m TM, thread int, fn func(Txn) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return runLoop(ctx, m, thread, autoSite(m, 2), DefaultBackoff, fn)
}

// RunCtxBackoff is RunCtx with an explicit backoff policy.
func RunCtxBackoff(ctx context.Context, m TM, thread int, pol BackoffPolicy, fn func(Txn) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return runLoop(ctx, m, thread, autoSite(m, 2), pol, fn)
}

// runLoop is the shared retry loop behind Run and RunCtx. ctx == nil means
// no cancellation (plain Run): the hot path then carries no context checks.
// site routes every attempt of this loop through SiteRunner.BeginSite when
// both the site and the runtime support it, so per-site statistics see the
// whole retry history of one logical transaction.
func runLoop(ctx context.Context, m TM, thread int, site siteID, pol BackoffPolicy, fn func(Txn) error) error {
	pol.fill()
	attempt := 0
	rg := newRNG()
	esc, canEscalate := m.(Escalator)
	sr, canSite := m.(SiteRunner)
	useSite := site.ok && canSite
	var wrapper *ctxTxn
	if ctx != nil {
		wrapper = &ctxTxn{ctx: ctx, done: ctx.Done()}
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if canEscalate && pol.EscalateAfter > 0 && attempt >= pol.EscalateAfter {
			esc.Escalate(thread)
		}
		var t Txn
		var err error
		if useSite {
			t, err = sr.BeginSite(thread, site.id)
		} else {
			t, err = m.Begin(thread)
		}
		if err != nil {
			return fmt.Errorf("tm: begin: %w", err)
		}
		arg := t
		if wrapper != nil {
			wrapper.t = t
			arg = wrapper
		}
		err = protect(m, t, fn, arg)
		if err == nil {
			if ctx != nil {
				// Pre-validate boundary: the write set is complete but
				// nothing is published; cancelling here rolls back.
				if cerr := ctx.Err(); cerr != nil {
					m.Abort(t)
					return cerr
				}
			}
			err = m.Commit(t)
			if err == nil {
				return nil
			}
		}
		reason, ok := IsAbort(err)
		if !ok {
			// Application failure (including a cancellation error surfaced
			// by a ctxTxn boundary): roll back and propagate.
			m.Abort(t)
			return err
		}
		// Transactional abort: the runtime already rolled back.
		if ctx != nil {
			// Post-verdict boundary: the attempt lost validation and is
			// gone; honor cancellation instead of retrying.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		// Back off by reason class before retrying.
		attempt++
		pol.wait(&rg, reason, attempt)
	}
}

// protect invokes fn(arg) and guarantees the runtime transaction t is
// rolled back if fn never returns — a panic or runtime.Goexit unwinding
// through the closure. The abort runs first (discarding the redo log,
// recycling the txn and its scratch/sub-signature state, releasing any
// in-flight engine slot), then the panic resumes naturally; Goexit is
// likewise not swallowed.
func protect(m TM, t Txn, fn func(Txn) error, arg Txn) (err error) {
	completed := false
	defer func() {
		if !completed {
			m.Abort(t)
		}
	}()
	err = fn(arg)
	completed = true
	return err
}

// ctxTxn decorates a runtime Txn with cancellation checks at the read and
// write boundaries. One wrapper per RunCtx loop, reused across attempts.
type ctxTxn struct {
	t    Txn
	ctx  context.Context
	done <-chan struct{}
}

// Read observes cancellation, then delegates.
func (c *ctxTxn) Read(a mem.Addr) (mem.Word, error) {
	select {
	case <-c.done:
		return 0, c.ctx.Err()
	default:
	}
	return c.t.Read(a)
}

// Write observes cancellation, then delegates.
func (c *ctxTxn) Write(a mem.Addr, v mem.Word) error {
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
	}
	return c.t.Write(a, v)
}

// spin burns a few cycles without yielding the scheduler entirely.
func spin(n int) {
	for i := 0; i < n; i++ {
		_ = atomic.LoadUint64(&spinSink)
	}
}

var spinSink uint64

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
