package sig_test

import (
	"fmt"

	"rococotm/internal/sig"
)

// Example demonstrates the signature operations ROCoCoTM builds on: exact
// rejection of disjoint sets and sound (never-false-negative) membership.
func Example() {
	h := sig.NewHasher(sig.Default512, 1)
	readSet := sig.New(sig.Default512)
	writeSet := sig.New(sig.Default512)

	for _, a := range []uint64{100, 200, 300} {
		readSet.Insert(h, a)
	}
	writeSet.Insert(h, 999)

	fmt.Println("member(200):", readSet.Query(h, 200))
	fmt.Println("overlap with disjoint write set:", readSet.Intersects(writeSet))

	writeSet.Insert(h, 300) // now they truly overlap
	fmt.Println("overlap after shared insert:", readSet.Intersects(writeSet))

	// Output:
	// member(200): true
	// overlap with disjoint write set: false
	// overlap after shared insert: true
}
