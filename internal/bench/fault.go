package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rococotm/internal/fault"
	"rococotm/internal/mem"
	"rococotm/internal/rococotm"
	"rococotm/internal/tm"
)

// FaultBenchConfig parameterizes the degradation experiment: the same
// RMW workload over the same lossy link, with and without the software
// fallback.
type FaultBenchConfig struct {
	// Threads is the worker count; default 8.
	Threads int
	// Duration is the wall-clock run length per arm; default 300ms.
	Duration time.Duration
	// Deadline is the per-validation deadline; default 1ms.
	Deadline time.Duration
	// Schedule is the injected fault scenario; the zero value selects the
	// default lossy link (delays past the deadline, dropped verdicts, and
	// a mid-run crash with repeating outages).
	Schedule fault.Schedule
	// Addresses is the shared-counter working set; default 16.
	Addresses int
}

func (c *FaultBenchConfig) fill() {
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = time.Millisecond
	}
	if c.Addresses == 0 {
		c.Addresses = 16
	}
	if c.Schedule == (fault.Schedule{}) {
		c.Schedule = fault.Schedule{
			Seed:        1,
			DelayProb:   0.2,
			DelayMin:    50 * time.Microsecond,
			DelayMax:    2 * time.Millisecond,
			DropProb:    0.02,
			CrashAfter:  500,
			DownFor:     2 * time.Millisecond,
			CrashRepeat: true,
		}
	}
}

// FaultBenchArm is the outcome of one arm.
type FaultBenchArm struct {
	Name         string
	Commits      uint64
	Aborts       uint64
	EngineAborts uint64 // tm.ReasonEngine aborts (outage pressure)
	ThroughputK  float64
	Fault        rococotm.FaultStats
	Link         fault.Stats
}

// FaultBenchReport compares graceful degradation against the
// deadline-only baseline under an identical fault schedule.
type FaultBenchReport struct {
	Threads  int
	Duration time.Duration
	Arms     []FaultBenchArm
}

// RunFaultBench runs both arms.
func RunFaultBench(cfg FaultBenchConfig) (*FaultBenchReport, error) {
	cfg.fill()
	rep := &FaultBenchReport{Threads: cfg.Threads, Duration: cfg.Duration}
	for _, arm := range []struct {
		name            string
		disableFallback bool
	}{
		{"fallback", false},
		{"baseline (no fallback)", true},
	} {
		res, err := runFaultArm(cfg, arm.name, arm.disableFallback)
		if err != nil {
			return nil, err
		}
		rep.Arms = append(rep.Arms, res)
	}
	return rep, nil
}

// runFaultArm drives Threads workers of counter RMWs for Duration against
// a runtime whose link runs cfg.Schedule. It uses a manual retry loop with
// a stop flag rather than tm.Run: in the no-fallback arm a dead engine
// makes transactions unable to ever commit, and the workers must still
// exit at the deadline instead of retrying forever.
func runFaultArm(cfg FaultBenchConfig, name string, disableFallback bool) (FaultBenchArm, error) {
	h := mem.NewHeap(1 << 12)
	base := h.MustAlloc(cfg.Addresses)
	var link *fault.Link
	m := rococotm.New(h, rococotm.Config{
		MaxThreads:       cfg.Threads + 1,
		ValidateDeadline: cfg.Deadline,
		DisableFallback:  disableFallback,
		ProbeInterval:    200 * time.Microsecond,
		WrapLink:         fault.Wrapper(cfg.Schedule, &link),
	})
	defer m.Close()

	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; !stopFlag.Load(); i++ {
				a := base + mem.Addr((th+i)%cfg.Addresses)
				x, err := m.Begin(th)
				if err != nil {
					return
				}
				v, err := x.Read(a)
				if err == nil {
					err = x.Write(a, v+1)
				}
				if err == nil {
					err = m.Commit(x)
				}
				if err == nil {
					continue
				}
				if _, ok := tm.IsAbort(err); !ok {
					m.Abort(x)
					return
				}
				runtime.Gosched()
			}
		}(th)
	}
	time.Sleep(cfg.Duration)
	stopFlag.Store(true)
	wg.Wait()

	st := m.Stats()
	arm := FaultBenchArm{
		Name:         name,
		Commits:      st.Commits,
		Aborts:       st.Aborts,
		EngineAborts: st.Reasons[tm.ReasonEngine],
		ThroughputK:  float64(st.Commits) / cfg.Duration.Seconds() / 1e3,
		Fault:        m.FaultStats(),
		Link:         link.Stats(),
	}
	return arm, nil
}

// String renders the comparison table.
func (r *FaultBenchReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault tolerance: RMW throughput under a lossy engine link, %d threads, %v/arm\n",
		r.Threads, r.Duration)
	fmt.Fprintf(&sb, "%-23s %10s %10s %12s %12s %8s %8s\n",
		"arm", "commits", "ktxn/s", "engineAbort", "deadlnMiss", "degrade", "recover")
	for _, a := range r.Arms {
		fmt.Fprintf(&sb, "%-23s %10d %10.1f %12d %12d %8d %8d\n",
			a.Name, a.Commits, a.ThroughputK, a.EngineAborts,
			a.Fault.DeadlineMisses, a.Fault.FallbackEntries, a.Fault.FallbackExits)
	}
	for _, a := range r.Arms {
		fmt.Fprintf(&sb, "  %-21s link: %d submits, %d delayed, %d dropped, %d crashes, %d restarts; fallback validations %d, final state %s\n",
			a.Name, a.Link.Submits, a.Link.Delayed, a.Link.Dropped,
			a.Link.Crashes, a.Link.Restarts, a.Fault.FallbackValidations, a.Fault.State)
	}
	sb.WriteString("(the fallback arm keeps committing through outages; the baseline stalls once the engine dies and never recovers)\n")
	return sb.String()
}
