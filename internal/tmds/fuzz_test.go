package tmds

import (
	"testing"

	"rococotm/internal/mem"
	"rococotm/internal/stm/seqtm"
	"rococotm/internal/tm"
)

// FuzzRBTreeAgainstMap interprets fuzzer bytes as an operation stream
// (insert/remove/find) and checks the red-black tree against a Go map
// oracle plus its own structural invariants.
func FuzzRBTreeAgainstMap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 2, 0, 3, 1, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := mem.NewHeap(1 << 18)
		m := seqtm.New(h)
		defer m.Close()
		tr, err := NewRBTree(h)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[mem.Word]mem.Word{}
		for i := 0; i+1 < len(data) && i < 400; i += 2 {
			op := data[i] % 3
			k := mem.Word(data[i+1] % 64)
			// The oracle map is mutated only after Run commits: a retried
			// closure would otherwise re-apply the insert/delete per attempt.
			var inserted, removed bool
			err := tm.Run(m, 0, func(x tm.Txn) error {
				inserted, removed = false, false
				switch op {
				case 0:
					ins, err := tr.Insert(x, k, k*3)
					if err != nil {
						return err
					}
					if _, exists := oracle[k]; ins == exists {
						t.Fatalf("insert(%d)=%v oracle=%v", k, ins, exists)
					}
					inserted = ins
				case 1:
					rem, err := tr.Remove(x, k)
					if err != nil {
						return err
					}
					if _, exists := oracle[k]; rem != exists {
						t.Fatalf("remove(%d)=%v oracle=%v", k, rem, exists)
					}
					removed = rem
				case 2:
					v, ok, err := tr.Find(x, k)
					if err != nil {
						return err
					}
					want, exists := oracle[k]
					if ok != exists || (ok && v != want) {
						t.Fatalf("find(%d) mismatch", k)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if inserted {
				oracle[k] = k * 3
			}
			if removed {
				delete(oracle, k)
			}
		}
		if err := tm.Run(m, 0, func(x tm.Txn) error {
			if _, err := tr.checkInvariants(x); err != nil {
				return err
			}
			n, err := tr.Len(x)
			if err != nil {
				return err
			}
			if n != len(oracle) {
				t.Fatalf("Len=%d oracle=%d", n, len(oracle))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}
