package rococotm

import (
	"errors"
	"fmt"

	"rococotm/internal/mem"
	"rococotm/internal/mvstore"
	"rococotm/internal/tm"
	"rococotm/internal/wal"
)

// This file is the durability half of the runtime: every committed write
// transaction is drained, at its ordered publication point, into a
// group-commit write-ahead log and a multi-version store.
//
// The hook sits in the ordered arm of Commit, immediately after the
// CommitObserver call: GlobalTS still reads seq there, so exactly one
// committer executes it at a time and sequences arrive contiguously in
// publication order. That makes the WAL publication-ordered by
// construction — recovery is a single forward replay, no sorting, no
// holes (degradation reissues abandoned sequences before they ever reach
// publication, so the stream the hook sees has no gaps). The multi-version
// store is fed in the same breath, before the commit's own write-back
// touches the heap, which is what makes its base-value capture sound (see
// the mvstore package comment).
//
// Configuring durability disables the fastTurn commit chain for the same
// reason an Observer does: the hook must see commits strictly one at a
// time at their serialization point.

// Durable binds a runtime to its durability backends. Build one by hand
// over empty backends, or with RecoverDurable to resume from an existing
// log.
type Durable struct {
	// Log receives one record per committed write transaction, appended in
	// publication order. The runtime owns it from New onward and closes it
	// in TM.Close.
	Log *wal.Log
	// Store receives the same write-sets, keyed by publication sequence;
	// read-only snapshot transactions are served from it.
	Store *mvstore.Store
	// SyncCommit makes Commit wait until its record is fsync-durable
	// before returning (group commit still batches the fsyncs; the wait is
	// outside the ordered section, so committers overlap). When false,
	// commits return as soon as the record is buffered and a crash may
	// lose the most recent flush interval's worth of commits.
	SyncCommit bool
}

// ErrNotDurable marks a commit that published in memory but whose WAL
// record could not be confirmed durable (sticky log failure). The
// transaction IS committed — callers must not retry it — but it may not
// survive a crash.
var ErrNotDurable = errors.New("rococotm: commit published but durability unconfirmed")

// durableState is the runtime-side binding: the shared scratch is safe
// because the hook runs only inside the ordered publication section.
type durableState struct {
	d      *Durable
	rec    wal.Record
	vals   []mem.Word // parallel to txn.writeOrder, for the store
	vals64 []uint64   // same values, for the WAL record
}

// durableAppend drains one committed write-set into the log and the store.
// Called with GlobalTS == seq (ordered publication section), before the
// transaction's own write-back.
func (r *TM) durableAppend(x *txn, seq uint64) {
	ds := r.dur
	ds.vals = ds.vals[:0]
	ds.vals64 = ds.vals64[:0]
	for _, a := range x.writeOrder {
		v := x.redo[a]
		ds.vals = append(ds.vals, v)
		ds.vals64 = append(ds.vals64, uint64(v))
	}
	ds.rec.Seq = seq
	ds.rec.ValidTS = x.validTS
	ds.rec.Reads = x.readAddrs
	ds.rec.WriteAddrs = x.writeAddrs
	ds.rec.WriteVals = ds.vals64
	// The log copies the record into its buffer synchronously, so the
	// scratch slices are free for reuse when Append returns. A sticky log
	// failure is surfaced to SyncCommit waiters via WaitDurable; the
	// in-memory commit proceeds regardless — it is already published.
	_ = ds.d.Log.Append(&ds.rec)
	ds.d.Store.ApplyUpdates(seq, x.writeOrder, ds.vals)
}

// DurableStats reports the durability backends' counters; ok is false when
// the runtime has no Durable configured.
type DurableStats struct {
	WAL   wal.Stats
	Store mvstore.Stats
}

// DurableStats returns the durability counters.
func (r *TM) DurableStats() (DurableStats, bool) {
	if r.dur == nil {
		return DurableStats{}, false
	}
	return DurableStats{
		WAL:   r.dur.d.Log.Stats(),
		Store: r.dur.d.Store.Stats(),
	}, true
}

// Durable exposes the configured durability binding (nil if none).
func (r *TM) Durable() *Durable {
	if r.dur == nil {
		return nil
	}
	return r.dur.d
}

// RetrieveSnapshot implements tm.Snapshotter: it pins the multi-version
// store at the current commit height. It fails only when the runtime has
// no durable store — tm.RunReadOnly then falls back to a transactional
// read-only execution.
func (r *TM) RetrieveSnapshot() (tm.Snapshot, error) {
	if r.dur == nil {
		return nil, errors.New("rococotm: no durable store configured")
	}
	return r.dur.d.Store.RetrieveSnapshot(), nil
}

// ReleaseSnapshot implements tm.Snapshotter.
func (r *TM) ReleaseSnapshot(s tm.Snapshot) {
	sn, ok := s.(*mvstore.Snapshot)
	if !ok || r.dur == nil {
		panic("rococotm: ReleaseSnapshot of a snapshot this runtime did not issue")
	}
	r.dur.d.Store.ReleaseSnapshot(sn)
}

// RecoverDurable rebuilds durable state from dev, as a process restart
// would: truncate the torn tail off the log, replay every intact record —
// into the multi-version store first (so base values are captured from the
// pre-write heap), then into the heap — in publication order, and reopen
// the log at the next sequence. The returned Durable plugs into
// Config.Durable; New then reseeds GlobalTS and the engine window at the
// recovered height. The replay result is returned alongside so callers can
// certify the recovered commit stream (internal/audit) or assert on the
// torn tail.
//
// The heap must be in its pre-crash initial state (recovery replays every
// write since the log began; log checkpointing is future work, so a log
// whose first record is not sequence 0 is rejected).
func RecoverDurable(dev wal.Device, heap *mem.Heap, opts wal.Options, storeCfg mvstore.Config, syncCommit bool) (*Durable, *wal.ReplayResult, error) {
	res, err := wal.Recover(dev)
	if err != nil {
		return nil, nil, fmt.Errorf("rococotm: recover: %w", err)
	}
	if len(res.Records) > 0 && res.Records[0].Seq != 0 {
		return nil, nil, fmt.Errorf("rococotm: recover: log starts at seq %d, not 0 (checkpointing unsupported)",
			res.Records[0].Seq)
	}
	store, err := mvstore.New(heap, storeCfg)
	if err != nil {
		return nil, nil, err
	}
	var addrs []mem.Addr
	var vals []mem.Word
	for i := range res.Records {
		rec := &res.Records[i]
		addrs = addrs[:0]
		vals = vals[:0]
		for j, a := range rec.WriteAddrs {
			addrs = append(addrs, mem.Addr(a))
			vals = append(vals, mem.Word(rec.WriteVals[j]))
		}
		// Store before heap: ApplyUpdates captures the pre-write base from
		// the heap, the same ordering the live commit path guarantees.
		store.ApplyUpdates(rec.Seq, addrs, vals)
		for j, a := range addrs {
			heap.Store(a, vals[j])
		}
	}
	log := wal.Open(dev, res.NextSeq, opts)
	return &Durable{Log: log, Store: store, SyncCommit: syncCommit}, res, nil
}

var _ tm.Snapshotter = (*TM)(nil)
