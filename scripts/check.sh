#!/usr/bin/env sh
# Pre-merge gate for this repository. Run from anywhere; it operates on
# the module root. Every step must pass before a change merges. Approximate
# lane runtimes (4-core container, warm build cache) are noted so a stall
# is recognizable:
#
#   1. gofmt       — formatting is canonical, no exceptions        (~1s)
#   2. go build    — the whole module compiles                     (~1s warm)
#   3. go vet      — stdlib static checks, plus an explicit
#                    -atomic -copylocks run: sync/atomic misuse and
#                    copied locks are the exact bug classes the
#                    concurrency passes build on                   (~5s)
#   4. tmlint      — the TM programming-model contracts plus the
#                    concurrency contracts of the lock-free hot
#                    path (atomicmix/seqlock/spinpark); prints a
#                    pass/finding/suppression summary line for
#                    EXPERIMENTS.md coverage tracking              (~5s)
#   5. hotalloc    — the //tm:hotpath zero-allocation gate: replays
#                    go build -gcflags=-m escape diagnostics over
#                    the static call graph of the annotated
#                    validate/commit/publish fast path; any new
#                    heap allocation there fails the merge         (~8s)
#   6. chaos lane  — go test -race -run Chaos ./internal/fault/... : the
#                    fault-injection scenarios (delay/drop/duplicate/
#                    reorder/stall/crash-restart) over their fixed seed
#                    matrix, repeated to shake out interleavings; asserts
#                    the committed history stays serializable across
#                    degrade/recover cycles                        (~40s)
#   7. audit lane  — go test -race over the lifecycle/auditor surface: a
#                    short chaos soak (cancellations, injected panics,
#                    watchdog kills) whose committed history the runtime
#                    serializability auditor must certify acyclic, gated
#                    by the auditor's self-test (a seeded wrong verdict
#                    must be flagged exactly once)                 (~30s)
#   8. recovery lane — go test -race over the durability surface: the
#                    crash/recovery chaos soak (repeated crash images off
#                    a fault-injecting disk, zero lost committed writes),
#                    the WAL torn-tail/corruption fuzz sweeps, and the
#                    recover-bench acceptance smoke                (~30s)
#   9. shard lane  — go test -race over the sharded validation plane:
#                    cross-shard atomicity stress (overlapping write
#                    sets spanning two engines must never both commit),
#                    the mixed single/cross soak with per-shard auditors
#                    plus merged-stream certification, sharded recovery
#                    with torn-cross-record reconciliation, and a short
#                    `rococobench -exp shard` smoke                (~30s)
#  10. serve lane  — the TM-as-a-service overload smoke: the serve front
#                    end's race-detected unit surface (admission, AIMD,
#                    deadlines, degradation tiers, StallBurst chaos), then
#                    a bounded `rococobench -exp serve` sweep through the
#                    real driver — goodput must stay positive while
#                    shedding, with the accounting identity, conservation
#                    invariant, auditor and pool checks all certified (~15s)
#  11. hybrid lane — go test -race over the adaptive hybrid runtime: the
#                    mixed fast/slow path oracles (lost-update, cross-path
#                    write skew, auditor-certified histories), the
#                    fast-publication protocol unit tests, the chaos
#                    mass-fallback scenario, then a bounded
#                    `rococobench -exp hybrid` crossover smoke      (~20s)
#  12. go test -race ./internal/...
#                  — the runtime and analyzer packages under the race
#                    detector; OCC code is concurrency code, so the race
#                    lane is not optional                          (~2min)
#  13. bench smoke — every benchmark compiles and survives one iteration
#                    (benchtime=1x), so perf lanes cannot silently rot;
#                    the non-race run also picks up the AllocsPerRun
#                    zero-allocation tests excluded from lane 12   (~30s)
#  14. bench gate  — cmd/benchgate re-measures the optimization-sensitive
#                    microbenchmarks (pipelined/ordered counter throughput,
#                    aggregate/per-commit extension folds, WAL append,
#                    snapshot read, sharded-plane throughput, serve-stack
#                    p99 overhead, hybrid fast-commit latency and
#                    throughput) and fails on a >20% regression vs
#                    internal/bench/baseline.json; re-record an
#                    intentional move with `benchgate -record`     (~3min)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go vet -atomic -copylocks ./..."
go vet -atomic -copylocks ./...

echo "== tmlint ./..."
go run ./cmd/tmlint -summary ./...

echo "== hotalloc gate: tmlint -hotalloc ./..."
go run ./cmd/tmlint -summary -hotalloc ./...

echo "== chaos lane: go test -race -run Chaos -count=2 ./internal/fault/..."
go test -race -run Chaos -count=2 ./internal/fault/...

echo "== audit lane: go test -race -run 'ChaosAuditSoak|SelfTest|Lifecycle|Watchdog|RunCtx' ./internal/audit/... ./internal/fault/... ./internal/rococotm/... ./internal/tm/..."
go test -race -run 'ChaosAuditSoak|SelfTest|Lifecycle|Watchdog|RunCtx' \
    ./internal/audit/... ./internal/fault/... ./internal/rococotm/... ./internal/tm/...

echo "== recovery lane: crash/recovery chaos + WAL fuzz + recover-bench smoke"
go test -race -run 'ChaosRecoverDurable' -count=1 ./internal/fault/...
go test -race -run 'TornTail|CorruptEveryByte|DiskWALRecovery|RecoverBenchSmoke' \
    ./internal/wal/... ./internal/fault/... ./internal/bench/...

echo "== shard lane: cross-shard atomicity + merged certification + sharded recovery + bench smoke"
go test -race -run 'Sharded|RecoverSharded|FileRecover' -count=1 \
    ./internal/rococotm/... ./internal/audit/... ./internal/fault/...
go run ./cmd/rococobench -exp shard -dur 50ms >/dev/null

echo "== serve lane: overload smoke — goodput under shedding, accounting/auditor certification"
go test -race -run 'TestServe' -count=1 ./internal/serve/...
go test -count=1 ./cmd/rococobench/

echo "== hybrid lane: mixed-path oracles + fast-publication protocol + crossover smoke"
go test -race -run 'TestHybrid|PublishFast|LineTable' -count=1 \
    ./internal/hybrid/... ./internal/rococotm/... ./internal/mem/...
go run ./cmd/rococobench -exp hybrid -dur 40ms >/dev/null

echo "== go test -race ./internal/..."
go test -race ./internal/...

echo "== bench smoke: go test -run=NONE -bench=. -benchtime=1x ./internal/..."
go test -run='ZeroAllocs' -bench=. -benchtime=1x ./internal/...

echo "== bench gate: go run ./cmd/benchgate"
go run ./cmd/benchgate

echo "== all checks passed"
