// Package lint statically enforces the transactional-memory programming
// contracts documented in internal/tm: abort errors must propagate, a Txn
// never escapes its atomic block or outlives an observed abort, and retry
// closures must be idempotent. It is built exclusively on the standard
// library (go/ast, go/parser, go/types, go/importer) so the module stays
// dependency-free.
//
// Eleven passes are provided. Seven enforce the tm programming model:
//
//   - aborterr: an error produced by Txn.Read, Txn.Write, TM.Commit or
//     tm.Run is discarded, never inspected, or caught by a branch that
//     swallows it without propagating, terminating or inspecting the
//     abort reason (tm.IsAbort).
//   - txnescape: a tm.Txn value escapes its atomic block — stored into a
//     struct field, package-level variable, map, slice or channel, or
//     captured by a spawned goroutine. Transactions are single-goroutine
//     and die with their block.
//   - retrypure: a closure passed to tm.Run performs a non-idempotent
//     update (append, ++/+=, map insert) on a variable captured from the
//     enclosing scope without resetting it at the top of the closure;
//     OCC re-executes the closure on abort, double-applying the update.
//   - deadtxn: a Txn method is invoked on a transaction after an abort
//     was already observed on that same transaction; after the first
//     AbortError the transaction is dead.
//   - runctx: a closure passed to tm.RunCtx/tm.RunCtxBackoff spins in an
//     unconditional loop that never crosses a transaction boundary or
//     consults the context — cancellation (and the watchdog) can never
//     reach it.
//   - deadlinectx: a closure passed to tm.RunCtx/tm.RunCtxBackoff builds
//     a fresh root context (context.Background/context.TODO), severing
//     the caller's deadline and cancellation chain — sub-operations then
//     outlive the per-request budget the context was meant to enforce.
//   - updatelock: a function acquires a commit-time update-set entry
//     (`u.active.Store(1)`, the write-set lock of the decoupled commit
//     pipeline) and then returns on some path before releasing it —
//     directly, via defer, or by calling a helper that transitively
//     performs the release. An entry leaked this way locks its write set
//     forever.
//
// Four are the concurrency-contract passes over the lock-free hot path
// (atomicmix.go, seqlock.go, spinpark.go, hotalloc.go):
//
//   - atomicmix: a struct field is accessed both through sync/atomic
//     (atomic.LoadUint64(&x.f), …) and through plain loads/stores outside
//     constructor or single-owner scopes — the bug class behind torn
//     seqlock versions and ring sequence cells.
//   - seqlock: seqlock-style slots (a struct with an atomic `ver` field)
//     must follow the protocol: writers bracket data mutations with an
//     odd version store before and the even successor after; readers
//     load the version, copy the data, and re-check the version.
//   - spinpark: a spin-wait loop on shared atomic state must yield
//     (runtime.Gosched, sleep, park, or a lock-free CAS retry) — pure
//     spinning starves the scheduler the PR 4 watchdog only catches at
//     runtime.
//   - hotalloc: functions annotated `//tm:hotpath` (and everything they
//     statically call inside the module) must not heap-allocate; the gate
//     parses `go build -gcflags=-m` escape diagnostics. It needs the go
//     toolchain, so it runs as its own mode (HotAlloc), not in Check.
//
// A finding may be suppressed by placing
//
//	//lint:ignore tmlint/<pass> reason
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one contract violation.
type Finding struct {
	Pos     token.Position
	Pass    string
	Message string
}

// String renders the driver's file:line: [pass] message format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Message)
}

// A Pass is one analyzer. A Pass with a nil Run does not operate on a
// single type-checked package (hotalloc needs the whole module plus the
// compiler's escape diagnostics); it is listed in Registry but skipped by
// Check.
type Pass struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// registry is the single source of truth for the pass set: Passes, Check,
// Registry, and the -list flag of cmd/tmlint all derive from it, so the
// documented pass list cannot drift from the analyzers actually run.
var registry = []*Pass{
	{
		Name: "aborterr",
		Doc:  "abort errors from Txn.Read/Txn.Write/TM.Commit/tm.Run must propagate",
		Run:  runAbortErr,
	},
	{
		Name: "txnescape",
		Doc:  "a tm.Txn must not escape its atomic block or goroutine",
		Run:  runTxnEscape,
	},
	{
		Name: "retrypure",
		Doc:  "tm.Run closures re-execute on retry; captured-state updates must be idempotent",
		Run:  runRetryPure,
	},
	{
		Name: "deadtxn",
		Doc:  "no Txn use after an observed abort on that transaction",
		Run:  runDeadTxn,
	},
	{
		Name: "runctx",
		Doc:  "tm.RunCtx closures must stay cancellable: no boundary-free unconditional loops",
		Run:  runRunCtx,
	},
	{
		Name: "deadlinectx",
		Doc:  "tm.RunCtx closures must not build root contexts (context.Background/TODO) — the caller's deadline governs",
		Run:  runDeadlineCtx,
	},
	{
		Name: "updatelock",
		Doc:  "an acquired update-set entry (active.Store(1)) must be released on every return path",
		Run:  runUpdateLock,
	},
	{
		Name: "atomicmix",
		Doc:  "a field accessed via sync/atomic must not also see plain loads/stores outside its constructor",
		Run:  runAtomicMix,
	},
	{
		Name: "seqlock",
		Doc:  "seqlock slots: writers bracket data with odd/even version stores, readers re-check the version",
		Run:  runSeqlock,
	},
	{
		Name: "spinpark",
		Doc:  "spin-wait loops on shared atomic state must yield (Gosched/park) or make lock-free progress",
		Run:  runSpinPark,
	},
	{
		Name: "hotalloc",
		Doc:  "//tm:hotpath functions (and their static callees) must not heap-allocate (go build -gcflags=-m gate)",
		Run:  nil, // whole-module mode: see HotAlloc
	},
}

// Passes returns every per-package analyzer, in reporting order.
func Passes() []*Pass {
	out := make([]*Pass, 0, len(registry))
	for _, p := range registry {
		if p.Run != nil {
			out = append(out, p)
		}
	}
	return out
}

// Registry returns every analyzer including whole-module modes like
// hotalloc — the set cmd/tmlint -list describes.
func Registry() []*Pass {
	return append([]*Pass(nil), registry...)
}

// Check runs every pass over p and returns the surviving findings plus any
// malformed suppression directives, sorted by position.
func Check(p *Package) []Finding {
	kept, _ := CheckCount(p)
	return kept
}

// CheckCount is Check plus the number of findings dropped by lint:ignore
// directives, so drivers can report suppression coverage.
func CheckCount(p *Package) ([]Finding, int) {
	var all []Finding
	for _, pass := range Passes() {
		all = append(all, pass.Run(p)...)
	}
	kept, suppressed := applyIgnores(p, all)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return kept, suppressed
}

// ignoreRE matches "//lint:ignore tmlint/<pass> reason".
var ignoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+tmlint/([a-z]+)\b[ \t]*(.*)$`)

// ignoreKey addresses one (file, line, pass) suppression target.
type ignoreKey struct {
	file string
	line int
	pass string
}

// collectIgnores scans file comments for lint:ignore directives. It
// returns the suppression set (a directive covers its own line — trailing
// comment — and the line below) and a finding for every malformed
// directive (missing reason). Shared by Check and the hotalloc mode.
func collectIgnores(fset *token.FileSet, files []*ast.File) (map[ignoreKey]bool, []Finding) {
	suppressed := map[ignoreKey]bool{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Finding{
						Pos:  pos,
						Pass: "ignore",
						Message: fmt.Sprintf(
							"lint:ignore tmlint/%s directive is missing a reason", m[1]),
					})
					continue
				}
				suppressed[ignoreKey{pos.Filename, pos.Line, m[1]}] = true
				suppressed[ignoreKey{pos.Filename, pos.Line + 1, m[1]}] = true
			}
		}
	}
	return suppressed, bad
}

// applyIgnores drops findings suppressed by lint:ignore directives,
// reports directives that are malformed (missing reason), and counts the
// findings dropped.
func applyIgnores(p *Package, findings []Finding) ([]Finding, int) {
	suppressed, out := collectIgnores(p.Fset, p.Files)
	dropped := 0
	for _, f := range findings {
		if suppressed[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Pass}] {
			dropped++
			continue
		}
		out = append(out, f)
	}
	return out, dropped
}
