// Package repro's root benchmarks regenerate the paper's tables and
// figures through `go test -bench`. One benchmark per experiment; each
// reports paper-relevant metrics via b.ReportMetric and prints the full
// table under -v through the bench package's String renderers.
//
// The heavyweight STAMP sweeps run reduced configurations here so the
// whole suite stays minutes-scale; use cmd/rococobench for the full
// paper-shaped runs.
package repro_test

import (
	"testing"

	"rococotm/internal/bench"
	"rococotm/internal/sig"
	"rococotm/internal/stamp"
)

// BenchmarkFig7 regenerates Figure 7 (bloom-filter false positivity).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultFig7()
		cfg.Probes = 1000
		rep, err := bench.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range rep.Points {
				if p.M == 512 && p.N == 8 {
					b.ReportMetric(p.IntersectModel, "intersectFP@512/8")
				}
			}
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (CC-algorithm abort rates).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultFig9()
		cfg.Traces = 10 // full 50 via cmd/rococobench
		rep, err := bench.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*rep.MaxReductionVs2PL, "maxRed%vs2PL")
			b.ReportMetric(100*rep.MaxReductionVsTOCC, "maxRed%vsTOCC")
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 (STAMP speedups and abort rates)
// on a reduced thread sweep.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Fig10Config{
			Scale:   stamp.Small,
			Threads: []int{1, 8, 28},
			Apps:    bench.AppNames(),
		}
		rep, err := bench.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if v, ok := rep.GeomeanVsTinySTM[28]; ok {
				b.ReportMetric(v, "geomean-vs-tinystm@28")
			}
			if v, ok := rep.GeomeanVsHTM[28]; ok {
				b.ReportMetric(v, "geomean-vs-htm@28")
			}
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig11 regenerates Figure 11 (per-transaction validation
// overhead).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Fig11Config{
			Scale:   stamp.Small,
			Threads: 8,
			Apps:    []string{"genome", "labyrinth", "vacation", "yada"},
		}
		rep, err := bench.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				if row.App == "labyrinth" {
					b.ReportMetric(row.ROCoCoModelUs, "rococo-validation-us")
					b.ReportMetric(row.TinySTMWallUs, "tinystm-validation-us")
				}
			}
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkResources regenerates the §6.5 resource table.
func BenchmarkResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunResources(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Rows[0].Registers), "registers@64/512")
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkAblationWindow sweeps the ROCoCo sliding-window size.
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunWindowAblation([]int{4, 8, 16, 32, 64}, 16, 16, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkAblationSig compares signature geometries under ROCoCoTM.
func BenchmarkAblationSig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunSigAblation([]string{"vacation"}, stamp.Small, 8,
			[]sig.Config{{M: 512, K: 4}, {M: 1024, K: 4}})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig6 regenerates the exclusive-vs-pipelined validation
// comparison of Figure 6.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := bench.RunFig6(nil)
		if i == 0 {
			last := rep.Rows[len(rep.Rows)-1]
			b.ReportMetric(last.PipelinedPerTxn, "pipelined-ns/txn@28")
			b.ReportMetric(last.ExclusivePerTxn, "exclusive-ns/txn@28")
			b.Log("\n" + rep.String())
		}
	}
}
