package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rococotm/internal/fpga"
	"rococotm/internal/mem"
	"rococotm/internal/rococotm"
	"rococotm/internal/stamp"
	"rococotm/internal/tm"
)

// TransportBenchConfig parameterizes the validation-transport A/B: the
// same workloads with the legacy per-request channel transport and the
// batched ring transport.
type TransportBenchConfig struct {
	// Threads is the worker count for the counter microbenchmark;
	// default 4.
	Threads int
	// Duration is the wall-clock length of the counter run per arm;
	// default 300ms.
	Duration time.Duration
	// Addresses is the shared-counter working set; default 16.
	Addresses int
	// RoundTrips is the sample count for the raw engine round-trip
	// measurement; default 30000.
	RoundTrips int
	// App is the STAMP application for the end-to-end row; default ssca2
	// (short transactions — the workload most sensitive to per-validation
	// overhead). Empty string skips the app row.
	App string
	// Scale is the STAMP input scale; default small (keeps `-exp all`
	// fast; the EXPERIMENTS.md table uses medium).
	Scale stamp.Scale
	// AppThreads is the thread count for the app row; default 8.
	AppThreads int
}

func (c *TransportBenchConfig) fill() {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Addresses == 0 {
		c.Addresses = 16
	}
	if c.RoundTrips == 0 {
		c.RoundTrips = 30000
	}
	if c.App == "" {
		c.App = "ssca2"
	}
	if c.AppThreads == 0 {
		c.AppThreads = 8
	}
}

// TransportArm is the outcome of one transport under all three workloads.
type TransportArm struct {
	Name      string
	Transport fpga.Transport

	// RoundTripNs is the mean host round trip of a synchronous
	// conflict-heavy Validate (the paper's §6 host-latency quantity).
	RoundTripNs float64

	// Counter microbenchmark.
	Commits      uint64
	Aborts       uint64
	ThroughputK  float64
	AllocsPerTxn float64
	BatchMean    float64
	BatchMax     uint64

	// STAMP app row (per validated transaction, wall clock).
	AppWallUs   float64
	AppCommits  uint64
	AppSpeedS   float64
	AppBatchMax uint64
}

// TransportReport compares the two transports.
type TransportReport struct {
	Threads  int
	Duration time.Duration
	App      string
	Arms     []TransportArm
}

// RunTransportBench runs both arms.
func RunTransportBench(cfg TransportBenchConfig) (*TransportReport, error) {
	cfg.fill()
	rep := &TransportReport{Threads: cfg.Threads, Duration: cfg.Duration, App: cfg.App}
	for _, tr := range []struct {
		name string
		t    fpga.Transport
	}{
		{"channel (legacy)", fpga.TransportChannel},
		{"ring (batched)", fpga.TransportRing},
	} {
		arm := TransportArm{Name: tr.name, Transport: tr.t}
		if err := runRoundTrip(cfg, &arm); err != nil {
			return nil, err
		}
		if err := runCounterMicro(cfg, &arm); err != nil {
			return nil, err
		}
		if cfg.App != "" {
			if err := runTransportApp(cfg, &arm); err != nil {
				return nil, err
			}
		}
		rep.Arms = append(rep.Arms, arm)
	}
	return rep, nil
}

// runRoundTrip measures the raw engine round trip: one committer issuing
// synchronous validations with an always-conflicting footprint (every
// request probes the full history window — the 4.9µs baseline shape).
// The channel arm allocates a reply channel per request, reproducing the
// legacy transport's cost; the ring arm uses the pooled verdict slot.
func runRoundTrip(cfg TransportBenchConfig, arm *TransportArm) error {
	e, err := fpga.Start(fpga.Config{Transport: arm.Transport})
	if err != nil {
		return err
	}
	defer e.Close()
	reads := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	writes := []uint64{11, 12, 13, 14}
	issue := func(i int) {
		r := fpga.Request{Token: uint64(i), ValidTS: uint64(i), ReadAddrs: reads, WriteAddrs: writes}
		if arm.Transport == fpga.TransportChannel {
			r.Reply = make(chan fpga.Verdict, 1)
		}
		if _, err := e.Validate(r); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 1000; i++ { // warm the window and the slot pool
		issue(i)
	}
	start := time.Now()
	for i := 0; i < cfg.RoundTrips; i++ {
		issue(1000 + i)
	}
	arm.RoundTripNs = float64(time.Since(start).Nanoseconds()) / float64(cfg.RoundTrips)
	return nil
}

// runCounterMicro drives Threads workers of counter RMWs through the full
// runtime and reports throughput, steady-state allocations per committed
// transaction (heap mallocs measured across the run after a warmup), and
// the engine's batch occupancy.
func runCounterMicro(cfg TransportBenchConfig, arm *TransportArm) error {
	h := mem.NewHeap(1 << 12)
	base := h.MustAlloc(cfg.Addresses)
	m := rococotm.New(h, rococotm.Config{
		MaxThreads: cfg.Threads + 1,
		Engine:     fpga.Config{Transport: arm.Transport},
	})
	defer m.Close()

	work := func(th, iters int, stop *atomic.Bool) {
		for i := 0; stop == nil || !stop.Load(); i++ {
			if stop == nil && i >= iters {
				return
			}
			a := base + mem.Addr((th+i)%cfg.Addresses)
			err := tm.Run(m, th, func(x tm.Txn) error {
				v, err := x.Read(a)
				if err != nil {
					return err
				}
				return x.Write(a, v+1)
			})
			if err != nil {
				panic(err)
			}
		}
	}

	// Warm every per-thread scratch structure before measuring.
	var warm sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		warm.Add(1)
		go func(th int) { defer warm.Done(); work(th, 200, nil) }(th)
	}
	warm.Wait()
	before := m.Stats()

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) { defer wg.Done(); work(th, 0, &stopFlag) }(th)
	}
	time.Sleep(cfg.Duration)
	stopFlag.Store(true)
	wg.Wait()
	runtime.ReadMemStats(&ms1)

	st := m.Stats()
	arm.Commits = st.Commits - before.Commits
	arm.Aborts = st.Aborts - before.Aborts
	arm.ThroughputK = float64(arm.Commits) / cfg.Duration.Seconds() / 1e3
	if arm.Commits > 0 {
		arm.AllocsPerTxn = float64(ms1.Mallocs-ms0.Mallocs) / float64(arm.Commits)
	}
	if st.ValidationBatches > 0 {
		// Requests == validations drained; mean occupancy over the whole
		// run (warmup included — occupancy, unlike mallocs, has no
		// warmup transient worth excluding).
		arm.BatchMean = float64(m.Engine().Stats().Requests) / float64(st.ValidationBatches)
	}
	arm.BatchMax = st.ValidationBatchMax
	return nil
}

// runTransportApp runs one STAMP application end to end and reports the
// measured per-validation engine wall time (the Fig. 11 quantity) under
// the arm's transport.
func runTransportApp(cfg TransportBenchConfig, arm *TransportArm) error {
	app, err := NewApp(cfg.App, cfg.Scale)
	if err != nil {
		return err
	}
	var rtm *rococotm.TM
	res, err := stamp.Execute(app, func(h *mem.Heap) tm.TM {
		rtm = rococotm.New(h, rococotm.Config{
			MaxThreads:        cfg.AppThreads + 1,
			MeasureValidation: true,
			Engine:            fpga.Config{Transport: arm.Transport},
		})
		return rtm
	}, cfg.AppThreads)
	if err != nil {
		return err
	}
	es := rtm.Engine().Stats()
	if es.Requests > 0 {
		arm.AppWallUs = float64(res.TM.ValidationNanos) / float64(es.Requests) / 1e3
	}
	arm.AppCommits = res.TM.Commits
	arm.AppSpeedS = res.Wall.Seconds()
	arm.AppBatchMax = es.MaxBatch
	return nil
}

// String renders the comparison table.
func (r *TransportReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Validation transport A/B: channel vs ring, %d threads, %v counter run, app=%s\n",
		r.Threads, r.Duration, r.App)
	fmt.Fprintf(&sb, "%-18s %12s %10s %10s %11s %10s %9s %9s\n",
		"arm", "roundtrip ns", "ktxn/s", "allocs/txn", "batch mean", "batch max", "app µs", "app s")
	for _, a := range r.Arms {
		fmt.Fprintf(&sb, "%-18s %12.0f %10.1f %10.2f %11.2f %10d %9.3f %9.3f\n",
			a.Name, a.RoundTripNs, a.ThroughputK, a.AllocsPerTxn,
			a.BatchMean, a.BatchMax, a.AppWallUs, a.AppSpeedS)
	}
	if len(r.Arms) == 2 && r.Arms[1].RoundTripNs > 0 {
		fmt.Fprintf(&sb, "(round-trip speedup %.2fx; the ring arm batches up to %d verdicts per drain and holds the commit hot path at zero steady-state allocations.\n app µs sums concurrent waiters' wall time — batching raises it even as end-to-end app s falls)\n",
			r.Arms[0].RoundTripNs/r.Arms[1].RoundTripNs, r.Arms[1].BatchMax)
	}
	return sb.String()
}
