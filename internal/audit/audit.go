// Package audit is a runtime serializability auditor for the ROCoCoTM
// commit stream. It hooks into the runtime as a rococotm.CommitObserver:
// every committed write transaction is delivered at its serialization
// point — in strictly increasing commit-sequence order — with its read and
// write footprints and the snapshot (ValidTS) the engine validated the
// read set against. From that stream the auditor incrementally rebuilds
// the R/W-dependency graph of §3 and checks the paper's axiom: the
// committed history is serializable iff the graph is acyclic.
//
// The graph is the standard dependency serialization graph, kept in
// transitive-reduced form (acyclicity is preserved; see DependencyGraph in
// internal/semantics for the unreduced offline construction):
//
//   - RAW: the latest writer of a location before a reader's snapshot
//     precedes the reader;
//   - WAW: consecutive writers of a location chain forward;
//   - WAR: a reader precedes the *first* writer of the location at or
//     after its snapshot. When that writer committed earlier in sequence
//     order than the reader — the engine serialized the reader into the
//     past, the ROCoCo reordering of §4 — the edge points backward.
//
// Forward edges follow commit order and can never close a cycle on their
// own; every cycle contains a backward WAR edge, and its newest member is
// the source of one. The auditor therefore runs a graph search only when
// a commit introduces a backward edge, which keeps the common case at a
// few index probes per commit.
//
// The window is bounded (MaxSpan). Backward edges reach at most as far
// back as a snapshot can lag, and the runtime's commit queue aborts any
// transaction lagging more than CommitQueueSlots commits, so with
// MaxSpan ≥ CommitQueueSlots every possible cycle is contained in the
// window. A validTS older than the window is still counted
// (HorizonBreaches) so a misconfigured auditor reports itself.
package audit

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"rococotm/internal/semantics"
	"rococotm/internal/trace"
)

// Config parameterizes an Auditor. The zero value is usable.
type Config struct {
	// MaxSpan bounds the audit window (commits tracked at once); it must
	// be at least the runtime's CommitQueueSlots for the no-missed-cycle
	// guarantee. Default 4096 (the default commit-queue size).
	MaxSpan int
	// KeepViolations bounds retained violation details (counters are
	// exact regardless). Default 16.
	KeepViolations int
	// KeepHistory retains every observed record so History and Trace can
	// rebuild the full run for the offline checkers. Memory grows without
	// bound — tests and the self-test only.
	KeepHistory bool
}

func (c *Config) fill() {
	if c.MaxSpan == 0 {
		c.MaxSpan = 4096
	}
	if c.KeepViolations == 0 {
		c.KeepViolations = 16
	}
}

// Record is one observed commit.
type Record struct {
	Seq, ValidTS uint64
	Reads        []uint64
	Writes       []uint64
}

// Violation is one detected dependency cycle.
type Violation struct {
	// Seq is the commit whose insertion closed the cycle (its newest
	// member).
	Seq uint64
	// Cycle lists the member commit sequences in edge order, starting at
	// Seq; the last element has an edge back to Seq.
	Cycle []uint64
}

// Stats is a snapshot of the audit counters.
type Stats struct {
	Observed        uint64 // commits recorded
	Edges           uint64 // dependency edges added
	BackEdges       uint64 // backward WAR edges (reorderings) seen
	Searches        uint64 // graph searches triggered by backward edges
	Violations      uint64 // dependency cycles found
	Gaps            uint64 // commit-sequence discontinuities (observer bug)
	HorizonBreaches uint64 // snapshots older than the audit window
}

// node is one windowed commit. Edges are stored on the source node as
// target sequences; nodes[i] holds sequence base+i.
type node struct {
	seq, validTS uint64
	reads        []uint64
	writes       []uint64
	out          []uint64
}

// reader is one windowed read of a location, pending its first overwriter.
type reader struct {
	seq, validTS uint64
}

// Auditor incrementally audits a commit stream. It implements
// rococotm.CommitObserver; all methods are safe for concurrent use (the
// runtime serializes ObserveCommit calls, but Stats readers race them).
type Auditor struct {
	cfg Config

	mu      sync.Mutex
	started bool
	base    uint64 // sequence of nodes[0]
	next    uint64 // expected next sequence
	nodes   []node
	// writers maps a location to the window's writer sequences,
	// ascending. readers holds reads still awaiting their first
	// overwriter — a write to the location resolves (and clears) them.
	writers map[uint64][]uint64
	readers map[uint64][]reader

	stats Stats
	viol  []Violation
	hist  []Record
}

// New builds an Auditor.
func New(cfg Config) *Auditor {
	cfg.fill()
	return &Auditor{
		cfg:     cfg,
		writers: map[uint64][]uint64{},
		readers: map[uint64][]reader{},
	}
}

// ObserveCommit implements rococotm.CommitObserver. The slices belong to
// the caller and are copied.
func (a *Auditor) ObserveCommit(seq, validTS uint64, reads, writes []uint64) {
	a.Observe(Record{
		Seq:     seq,
		ValidTS: validTS,
		Reads:   append([]uint64(nil), reads...),
		Writes:  append([]uint64(nil), writes...),
	})
}

// Observe records one commit; rec's slices are retained.
func (a *Auditor) Observe(rec Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Observed++
	if a.cfg.KeepHistory {
		a.hist = append(a.hist, rec)
	}
	if a.started && rec.Seq != a.next {
		// The observer contract (strictly increasing, contiguous) broke;
		// the graph across the gap is meaningless, so restart the window.
		a.stats.Gaps++
		a.flushLocked()
	}
	if !a.started || len(a.nodes) == 0 {
		a.started = true
		a.base = rec.Seq
	}
	a.next = rec.Seq + 1

	if rec.ValidTS < a.base {
		a.stats.HorizonBreaches++
	}

	n := node{seq: rec.Seq, validTS: rec.ValidTS, reads: rec.Reads, writes: rec.Writes}
	hasBack := false

	// Read edges. RAW: latest writer before the snapshot precedes us.
	// Backward WAR: the first writer at or after the snapshot — already
	// committed, since it is in the window — overwrote what we read, so we
	// precede it despite committing later.
	for _, addr := range rec.Reads {
		ws := a.writers[addr]
		i := sort.Search(len(ws), func(i int) bool { return ws[i] >= rec.ValidTS })
		if i > 0 {
			a.addEdge(ws[i-1], rec.Seq)
		}
		if i < len(ws) {
			n.out = append(n.out, ws[i])
			a.stats.Edges++
			a.stats.BackEdges++
			hasBack = true
		}
	}

	// Write edges. WAW: chain behind the previous writer. Forward WAR:
	// any pending reader whose snapshot no earlier writer overwrote has us
	// as its first overwriter; a write resolves every pending reader one
	// way or the other, so the pending list clears.
	for _, addr := range rec.Writes {
		ws := a.writers[addr]
		last := uint64(0)
		haveLast := false
		if len(ws) > 0 {
			last = ws[len(ws)-1]
			haveLast = true
			a.addEdge(last, rec.Seq)
		}
		if rs := a.readers[addr]; len(rs) > 0 {
			for _, r := range rs {
				if r.seq == rec.Seq {
					continue // our own read of a location we write
				}
				if !haveLast || last < r.validTS {
					a.addEdge(r.seq, rec.Seq)
				}
			}
			delete(a.readers, addr)
		}
		a.writers[addr] = append(ws, rec.Seq)
	}
	for _, addr := range rec.Reads {
		a.readers[addr] = append(a.readers[addr], reader{seq: rec.Seq, validTS: rec.ValidTS})
	}

	a.nodes = append(a.nodes, n)
	for len(a.nodes) > a.cfg.MaxSpan {
		a.evictLocked()
	}

	if hasBack {
		a.stats.Searches++
		if cyc := a.findCycleLocked(rec.Seq); cyc != nil {
			a.stats.Violations++
			if len(a.viol) < a.cfg.KeepViolations {
				a.viol = append(a.viol, Violation{Seq: rec.Seq, Cycle: cyc})
			}
		}
	}
}

// addEdge records from → to on the (windowed) source node.
func (a *Auditor) addEdge(from, to uint64) {
	if from < a.base || from == to {
		return
	}
	i := int(from - a.base)
	if i >= len(a.nodes) {
		return
	}
	a.nodes[i].out = append(a.nodes[i].out, to)
	a.stats.Edges++
}

// evictLocked drops the oldest windowed commit and its index entries.
func (a *Auditor) evictLocked() {
	old := a.nodes[0]
	a.nodes = a.nodes[1:]
	a.base = old.seq + 1
	for _, addr := range old.writes {
		if ws := a.writers[addr]; len(ws) > 0 && ws[0] == old.seq {
			if len(ws) == 1 {
				delete(a.writers, addr)
			} else {
				a.writers[addr] = ws[1:]
			}
		}
	}
	for _, addr := range old.reads {
		if rs := a.readers[addr]; len(rs) > 0 && rs[0].seq == old.seq {
			if len(rs) == 1 {
				delete(a.readers, addr)
			} else {
				a.readers[addr] = rs[1:]
			}
		}
	}
}

// flushLocked restarts the window (sequence gap recovery).
func (a *Auditor) flushLocked() {
	a.nodes = a.nodes[:0]
	a.writers = map[uint64][]uint64{}
	a.readers = map[uint64][]reader{}
	a.started = false
}

// findCycleLocked searches for a path from start back to itself and
// returns the member sequences in edge order (nil if acyclic). Iterative
// DFS over the window; edges to evicted or future sequences are dead.
func (a *Auditor) findCycleLocked(start uint64) []uint64 {
	n := len(a.nodes)
	si := int(start - a.base)
	if si < 0 || si >= n {
		return nil
	}
	visited := make([]bool, n)
	parent := make([]int32, n)
	visited[si] = true
	stack := []int{si}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tseq := range a.nodes[i].out {
			if tseq == start && i != si {
				// Reconstruct start → … → i, whose last hop returns to
				// start.
				var rev []uint64
				for k := i; k != si; k = int(parent[k]) {
					rev = append(rev, a.nodes[k].seq)
				}
				cyc := make([]uint64, 0, len(rev)+1)
				cyc = append(cyc, start)
				for j := len(rev) - 1; j >= 0; j-- {
					cyc = append(cyc, rev[j])
				}
				return cyc
			}
			if tseq < a.base {
				continue
			}
			j := int(tseq - a.base)
			if j >= n || visited[j] {
				continue
			}
			visited[j] = true
			parent[j] = int32(i)
			stack = append(stack, j)
		}
	}
	return nil
}

// Stats returns a snapshot of the audit counters.
func (a *Auditor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Violations returns the retained violation details (up to
// KeepViolations; the Stats counter is exact).
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.viol...)
}

// Certify replays a commit stream — typically the records a crash
// recovery extracted from the write-ahead log — through a fresh Auditor
// and returns its verdict: nil iff the stream is gap-free, within the
// audit horizon, and certified acyclic. This is the recovery hand-off
// point: after a crash, the log's intact prefix must still read as a
// serializable history, or the durable state itself is corrupt.
func Certify(recs []Record, cfg Config) error {
	a := New(cfg)
	for _, rec := range recs {
		a.Observe(rec)
	}
	return a.Err()
}

// Err summarizes the verdict: nil iff the observed history is certified
// acyclic and the observation stream itself was sound.
func (a *Auditor) Err() error {
	s := a.Stats()
	switch {
	case s.Violations > 0:
		return fmt.Errorf("audit: %d serializability violation(s) in %d commits (first: %v)",
			s.Violations, s.Observed, a.Violations()[0].Cycle)
	case s.Gaps > 0:
		return fmt.Errorf("audit: %d commit-sequence gap(s) in %d commits", s.Gaps, s.Observed)
	case s.HorizonBreaches > 0:
		return fmt.Errorf("audit: %d snapshot(s) older than the %d-commit audit window",
			s.HorizonBreaches, a.cfg.MaxSpan)
	}
	return nil
}

// History rebuilds the full run as a semantics.History for the offline
// checkers (KeepHistory only). Commit order provides both the real-time
// intervals and the per-object write order; reads are resolved to the
// latest writer before each transaction's snapshot.
func (a *Auditor) History() (semantics.History, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.cfg.KeepHistory {
		return semantics.History{}, fmt.Errorf("audit: History requires Config.KeepHistory")
	}
	name := func(seq uint64) string { return "t" + strconv.FormatUint(seq, 10) }
	obj := func(addr uint64) string { return "x" + strconv.FormatUint(addr, 10) }
	writersOf := map[uint64][]uint64{}
	order := map[string][]string{}
	for _, rec := range a.hist {
		for _, addr := range rec.Writes {
			writersOf[addr] = append(writersOf[addr], rec.Seq)
			order[obj(addr)] = append(order[obj(addr)], name(rec.Seq))
		}
	}
	h := semantics.History{WriteOrder: order}
	for _, rec := range a.hist {
		t := semantics.Txn{
			ID:    name(rec.Seq),
			Start: float64(rec.Seq),
			End:   float64(rec.Seq) + 0.5,
			Reads: map[string]string{},
		}
		for _, addr := range rec.Writes {
			t.Writes = append(t.Writes, obj(addr))
		}
		for _, addr := range rec.Reads {
			ws := writersOf[addr]
			i := sort.Search(len(ws), func(i int) bool { return ws[i] >= rec.ValidTS })
			ver := semantics.InitialVersion
			if i > 0 {
				ver = name(ws[i-1])
			}
			t.Reads[obj(addr)] = ver
		}
		h.Txns = append(h.Txns, t)
	}
	return h, nil
}

// Trace exports the full run in the internal/trace encoding (KeepHistory
// only). Reads exclude locations the transaction also wrote, keeping the
// sets disjoint as trace.Txn requires.
func (a *Auditor) Trace() ([]trace.Txn, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.cfg.KeepHistory {
		return nil, fmt.Errorf("audit: Trace requires Config.KeepHistory")
	}
	out := make([]trace.Txn, 0, len(a.hist))
	for _, rec := range a.hist {
		t := trace.Txn{ID: int(rec.Seq)}
		written := map[uint64]bool{}
		for _, addr := range rec.Writes {
			if !written[addr] {
				written[addr] = true
				t.Writes = append(t.Writes, int(addr))
			}
		}
		for _, addr := range rec.Reads {
			if !written[addr] {
				t.Reads = append(t.Reads, int(addr))
			}
		}
		sort.Ints(t.Reads)
		sort.Ints(t.Writes)
		out = append(out, t)
	}
	return out, nil
}

// SelfTest seeds a fresh auditor with a known-bad pair of verdicts — two
// transactions that each read what the other wrote from the same snapshot,
// the canonical unserializable reordering — and verifies the inline
// checker flags exactly one violation and the offline §3 checker agrees.
// A passing self-test certifies the audit machinery itself before a run's
// "0 violations" verdict is believed.
func SelfTest() error {
	a := New(Config{KeepHistory: true})
	a.Observe(Record{Seq: 0, ValidTS: 0, Reads: []uint64{1}, Writes: []uint64{2}})
	a.Observe(Record{Seq: 1, ValidTS: 0, Reads: []uint64{2}, Writes: []uint64{1}})
	s := a.Stats()
	if s.Violations != 1 {
		return fmt.Errorf("audit: self-test expected exactly 1 violation, got %d", s.Violations)
	}
	h, err := a.History()
	if err != nil {
		return fmt.Errorf("audit: self-test: %w", err)
	}
	ok, _, err := h.Serializable()
	if err != nil {
		return fmt.Errorf("audit: self-test offline check: %w", err)
	}
	if ok {
		return fmt.Errorf("audit: self-test: offline checker calls the seeded cycle serializable")
	}
	return nil
}
