package rococotm

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"rococotm/internal/fpga"
	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// This file is the slow-path half of the hybrid runtime's commit protocol:
// how an uninstrumented fast-path transaction (internal/hybrid) publishes
// its already-applied writes into the global commit order so that engine
// validation, the commit queue, the auditor, and every concurrent slow
// transaction observe it exactly like an engine-validated commit.
//
// A fast transaction executes with no signatures and no engine round trip:
// it takes encounter-time write ownership of heap lines (LineTable), stores
// eagerly with an undo log, and records the seqlock version of every line
// it reads. At commit it calls PublishFast, which
//
//  1. claims the next commit sequence — by recording the footprint in the
//     engine's sliding window (Engine.RecordFast), so later slow
//     validations see the fast commit's read and write sets and cross-path
//     write skew is caught; in degraded mode the software fallback window
//     records it instead;
//  2. installs the thread's update-set entry, the same commit-time lock
//     slow committers use, so later write-backs order WAW against it and
//     slow readers keep spinning on the footprint;
//  3. waits for its exact turn (GlobalTS == seq). Group advance cannot
//     pass it: the commit-queue slot stays unpublished until the turn is
//     taken;
//  4. at the turn, scans for still-active earlier write-backs that may
//     overlap its footprint (they could still be storing, with version
//     bumps in flight) and fails conservatively on any hit — the scan
//     never waits, so it cannot deadlock with a write-back that is itself
//     waiting out one of our owned lines;
//  5. validates every recorded read-line version by equality — any slow
//     write-back or fast commit that touched a read line since the read
//     moved the version and fails us;
//  6. publishes: the real write signature into the commit queue on
//     success, the empty signature on failure (the sequence is consumed
//     either way — the engine window already holds the footprint, which is
//     conservative-safe), then the observer record and the GlobalTS
//     advance. On failure the undo values are restored first, while the
//     lines are still owned and the update-set entry still held, so the
//     rollback is invisible to every other path.
//
// PublishFast always finalizes the heap: on a nil return the eager stores
// are the committed values; on any error return the undo values have been
// restored. The caller keeps line ownership (odd line versions) across the
// whole call and releases it — EndApply then ownership-word clear — only
// after PublishFast returns, which is what makes the restore invisible.

// FastFootprint is the commit-time footprint a fast-path transaction hands
// to PublishFast. The slices stay owned by the caller and are not retained
// past the call (the engine window copies what it keeps).
type FastFootprint struct {
	// Thread is the committing thread id (also the update-slot index).
	Thread int
	// ReadAddrs is every heap word address the transaction read, for the
	// engine window and the observer.
	ReadAddrs []uint64
	// WriteAddrs64 is every written heap word address, for the engine
	// window, the write signature, and the observer.
	WriteAddrs64 []uint64
	// WriteOrder/NewVals/OldVals are the undo log: one entry per written
	// address (first-write order), with the eagerly-stored new value and
	// the pre-transaction value. NewVals is already in the heap when
	// PublishFast is called; OldVals is what a failure restores.
	WriteOrder []mem.Addr
	NewVals    []mem.Word
	OldVals    []mem.Word
	// ReadLines/ReadVers are the recorded seqlock versions of the lines
	// read (even values, captured at first read), validated by equality at
	// the turn. Lines the transaction also write-owns may be omitted:
	// ownership plus the slow write-back's line sentinel already exclude
	// every foreign store from them.
	ReadLines []uint64
	ReadVers  []uint64
}

// PublishFast publishes one fast-path commit into the global commit order.
// It returns nil when the commit is published (the eager stores stand), a
// tm abort error when the attempt must be retried (undo values restored):
// CodeFallback when an irrevocable transaction holds the gate, CodeEngine
// when the engine path is unavailable mid-degradation, CodeConflict when
// validation failed at the turn. Any other error is a hard runtime fault.
func (r *TM) PublishFast(f *FastFootprint) error {
	if r.lt == nil {
		panic("rococotm: PublishFast without Config.LineTable")
	}
	// The shared gate keeps irrevocable turns exclusive. TryRLock, not
	// RLock: a blocking wait here while holding line ownership could park
	// the irrevocable transaction's own read spins forever.
	if !r.gate.TryRLock() {
		r.restoreFastHeap(f)
		return tm.AbortCode(tm.CodeFallback)
	}
	defer r.gate.RUnlock()

	seq, viaEngine, err := r.claimFastSeq(f)
	if err != nil {
		r.restoreFastHeap(f)
		if errors.Is(err, errUnavailable) {
			return tm.AbortCode(tm.CodeEngine)
		}
		return fmt.Errorf("rococotm: fast sequence claim: %w", err)
	}

	// Install the update-set entry — the same commit-time lock a slow
	// committer holds from verdict to write-back completion. From here on,
	// later-sequence write-backs WAW-order behind us and slow readers
	// probing our footprint keep spinning. Order matters: sequence, then
	// words, then active (see Commit).
	ws := r.fastSigs[f.Thread]
	ws.Reset()
	for _, a := range f.WriteAddrs64 {
		ws.Insert(r.hasher, a)
	}
	u := &r.updates[f.Thread]
	u.seq.Store(seq)
	for i, w := range ws.Words() {
		u.words[i].Store(w)
	}
	u.active.Store(1)

	// Wait for the exact turn. An engine-issued sequence in FT mode bounds
	// the wait exactly like awaitTurn: a hole below us needs degradation to
	// clear, and the quiesce needs us to let go. A fallback-issued sequence
	// must ALWAYS reach publication — promote() waits for the fallback
	// window to drain to GlobalTS — so it spins unboundedly and publishes
	// the empty signature even when doomed.
	if r.ftEnabled && viaEngine {
		deadline := time.Now().Add(r.cfg.ValidateDeadline)
		for i := 0; r.globalTS.Load() != seq; i++ {
			if r.state.Load() != stateHealthy {
				return r.abandonFast(f, false)
			}
			if i&63 == 63 && time.Now().After(deadline) {
				r.fc.deadlineMisses.Add(1)
				return r.abandonFast(f, true)
			}
			runtime.Gosched()
		}
	} else {
		for spin := 0; r.globalTS.Load() != seq; spin++ {
			if spin > 8 {
				runtime.Gosched()
			}
		}
	}

	// Serialization point: GlobalTS == seq until we store seq+1.
	failed := r.fastDoomed[f.Thread].Load() != 0

	// Drain scan: an earlier-sequence write-back still active may have
	// stores or version bumps in flight. One that may touch our read lines
	// could invalidate them after we check; one that may touch our write
	// lines is (or will be) waiting out our ownership. Either way we fail
	// conservatively instead of waiting — waiting could deadlock against a
	// write-back that is itself doom-spinning on one of our lines.
	if !failed {
		rs := r.fastReadSigs[f.Thread]
		rs.Reset()
		for _, a := range f.ReadAddrs {
			rs.Insert(r.hasher, a)
		}
		for i := range r.updates {
			if i == f.Thread {
				continue
			}
			u2 := &r.updates[i]
			if u2.active.Load() != 1 || u2.seq.Load() >= seq {
				continue
			}
			if r.writerMayOverlap(u2, ws) || r.writerMayOverlap(u2, rs) {
				failed = true
				break
			}
		}
	}

	// Read validation: every recorded line version must be exactly what
	// the read saw. Completed write-backs bumped by 2, fast commits by 2
	// (BeginApply+EndApply) — any movement is a conflict.
	if !failed {
		for i, l := range f.ReadLines {
			if r.lt.Version(l) != f.ReadVers[i] {
				failed = true
				break
			}
		}
	}

	if failed {
		// The lines are still owned and the update-set entry still active,
		// so no other path can observe the rollback in flight.
		r.restoreFastHeap(f)
		r.publishSlot(seq, r.emptyFastSig)
		r.publishAggregates(seq)
		if r.cfg.Observer != nil {
			r.cfg.Observer.ObserveCommit(seq, seq, nil, nil)
		}
		r.globalTS.Store(seq + 1)
		u.active.Store(0)
		if r.ftEnabled && viaEngine {
			r.engineInflight.Add(-1)
		}
		return tm.AbortCode(tm.CodeConflict)
	}

	r.publishSlot(seq, ws)
	r.publishAggregates(seq)
	if r.cfg.Observer != nil {
		// Reads were validated consistent at this very sequence, so the
		// snapshot the observer records is the commit's own position.
		r.cfg.Observer.ObserveCommit(seq, seq, f.ReadAddrs, f.WriteAddrs64)
	}
	r.lt.BumpClock()
	r.globalTS.Store(seq + 1)
	u.active.Store(0)
	if r.ftEnabled && viaEngine {
		r.engineInflight.Add(-1)
	}
	return nil
}

// claimFastSeq claims the next commit sequence for a fast footprint,
// recording the footprint in whichever validation window currently owns
// the sequence space. viaEngine reports that the claim holds an
// engineInflight reference (FT mode, healthy state).
func (r *TM) claimFastSeq(f *FastFootprint) (uint64, bool, error) {
	if !r.ftEnabled {
		v, err := r.eng.RecordFast(uint64(f.Thread), f.ReadAddrs, f.WriteAddrs64)
		if err != nil {
			return 0, false, err
		}
		return uint64(v.Seq), false, nil
	}
	for {
		switch r.state.Load() {
		case stateHealthy:
			// Reference before the claim, so degradation's quiesce cannot
			// rebase the window while we hold an unpublished sequence.
			r.engineInflight.Add(1)
			v, err := r.eng.RecordFast(uint64(f.Thread), f.ReadAddrs, f.WriteAddrs64)
			if err != nil {
				r.engineInflight.Add(-1)
				if errors.Is(err, fpga.ErrClosed) {
					r.fc.engineErrors.Add(1)
					r.degrade()
					continue
				}
				return 0, false, err
			}
			return uint64(v.Seq), true, nil
		case stateDraining:
			return 0, false, errUnavailable
		case stateDegraded:
			r.fbMu.Lock()
			if r.state.Load() != stateDegraded {
				r.fbMu.Unlock()
				continue
			}
			r.fc.fallbackValidations.Add(1)
			v := r.fbPl.Process(fpga.Request{
				Token:      uint64(f.Thread),
				ValidTS:    uint64(r.fbPl.NextSeq()),
				ReadAddrs:  f.ReadAddrs,
				WriteAddrs: f.WriteAddrs64,
			})
			r.fbMu.Unlock()
			return uint64(v.Seq), false, nil
		}
	}
}

// abandonFast gives up an engine-issued fast sequence before publication,
// mirroring abandonCommit: restore the heap, retract the update-set entry,
// release the inflight reference, optionally trip degradation.
func (r *TM) abandonFast(f *FastFootprint, triggerDegrade bool) error {
	r.restoreFastHeap(f)
	r.updates[f.Thread].active.Store(0)
	r.engineInflight.Add(-1)
	r.fc.abandoned.Add(1)
	if triggerDegrade {
		r.degrade()
	}
	return tm.AbortCode(tm.CodeEngine)
}

// restoreFastHeap rolls the footprint's eager stores back to the undo
// values. Callers hold write ownership of every touched line (odd
// versions), so no reader — fast or slow — can observe the rollback.
func (r *TM) restoreFastHeap(f *FastFootprint) {
	for i := len(f.WriteOrder) - 1; i >= 0; i-- {
		r.heap.Store(f.WriteOrder[i], f.OldVals[i])
	}
}

// ValidateFastReadOnly is the commit-time check for a read-only fast
// transaction: it either certifies that every recorded read belongs to one
// consistent snapshot, or returns false (abort and retry). Read-only fast
// commits claim no sequence and publish nothing — their serialization
// point is this validation, which slots them between two published
// commits — so without it they would be the one path with no commit-time
// defense against a write-back applying its stores line by line: the
// publication clock moves once per write-back, not per line, and a read
// that lands between two of a write-back's stores sees no clock movement
// and never revalidates its earlier reads.
//
// Two checks close that hole, in this order:
//
//  1. drain scan — any active update-set entry whose write signature may
//     cover a read address is a committer whose write-back may still be
//     mid-drain; fail conservatively. Every active entry counts (there is
//     no own sequence to bound the scan by).
//  2. version validation — every recorded read-line version must equal
//     what the read saw. A write-back that retired before the scan bumped
//     each touched line before clearing its entry, so the bumps are
//     visible here; one that arms after the scan either bumps a read line
//     before we load it (caught) or applies entirely after our loads
//     (serializes after us).
//
//tm:hotpath
func (r *TM) ValidateFastReadOnly(thread int, readAddrs, readLines, readVers []uint64) bool {
	if r.lt == nil {
		panic("rococotm: ValidateFastReadOnly without Config.LineTable")
	}
	rs := r.fastReadSigs[thread]
	rs.Reset()
	for _, a := range readAddrs {
		rs.Insert(r.hasher, a)
	}
	for i := range r.updates {
		if i == thread {
			continue
		}
		u := &r.updates[i]
		if u.active.Load() != 1 {
			continue
		}
		if r.writerMayOverlap(u, rs) {
			return false
		}
	}
	for i, l := range readLines {
		if r.lt.Version(l) != readVers[i] {
			return false
		}
	}
	return true
}

// doomFastLineOwner sets the doom flag of the fast transaction currently
// owning line, if any. Irrevocable readers use it: an irrevocable
// transaction must never abort, but a fast owner stalled in user code
// holds the line's seqlock odd without holding the gate, and
// IrrevocablePending only reaches it at its next operation — which may not
// come. Dooming it from the reader side makes the wait bounded by one fast
// rollback; the owner could never publish anyway (the gate is held
// exclusively, so PublishFast's TryRLock fails).
//
//tm:hotpath
func (r *TM) doomFastLineOwner(line uint64) {
	if w := mem.LineWriterOf(r.lt.Own(line).Load()); w >= 0 && w < len(r.fastDoomed) {
		r.fastDoomed[w].Store(1)
	}
}

// FastDoomed reports whether a slow write-back has doomed thread's current
// fast transaction: it wants a line the transaction owns and is waiting
// for the rollback. The fast path polls this at every operation and inside
// its commit, and must abort promptly when set.
//
//tm:hotpath
func (r *TM) FastDoomed(thread int) bool {
	return r.fastDoomed[thread].Load() != 0
}

// ClearFastDoom resets thread's doom flag; the fast path calls it when a
// new transaction begins (it owns no lines yet, so a doom arriving from a
// stale observation can only cause one spurious abort).
//
//tm:hotpath
func (r *TM) ClearFastDoom(thread int) {
	r.fastDoomed[thread].Store(0)
}

// IrrevocablePending reports that a thread is waiting for (or holding) the
// irrevocable gate. Fast transactions poll it and self-abort: they never
// block on the gate, so the irrevocable turn could otherwise starve behind
// a stream of fast commits, and a fast owner spinning inside the
// irrevocable transaction's read would deadlock against it.
//
//tm:hotpath
func (r *TM) IrrevocablePending() bool {
	return r.irrevPending.Load() > 0
}

// LineTable returns the shared line table (nil when the hybrid fast path
// is not configured).
func (r *TM) LineTable() *mem.LineTable { return r.lt }
