package tmds

import (
	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// List is a sorted singly-linked list with unique keys — STAMP's list_t.
// Node layout: [key, val, next]. The header is a single word holding the
// first-node pointer.
type List struct {
	h    *mem.Heap
	head mem.Addr // address of the head-pointer word
}

const (
	lKey = iota
	lVal
	lNext
	lNode
)

// NewList allocates an empty list.
func NewList(h *mem.Heap) (List, error) {
	head, err := h.Alloc(1)
	if err != nil {
		return List{}, err
	}
	return List{h: h, head: head}, nil
}

// Handle returns the heap address of the list header.
func (l List) Handle() mem.Addr { return l.head }

// ListAt rebinds a List from a stored handle.
func ListAt(h *mem.Heap, head mem.Addr) List { return List{h: h, head: head} }

// locate returns (prevPtrAddr, node) where node is the first node with
// key ≥ k (node may be Nil) and prevPtrAddr is the address of the pointer
// word that points at it.
func (l List) locate(x tm.Txn, k mem.Word) (mem.Addr, mem.Addr, error) {
	prevPtr := l.head
	for {
		cur, err := x.Read(prevPtr)
		if err != nil {
			return 0, 0, err
		}
		if ptr(cur) == mem.Nil {
			return prevPtr, mem.Nil, nil
		}
		key, err := field(x, ptr(cur), lKey)
		if err != nil {
			return 0, 0, err
		}
		if key >= k {
			return prevPtr, ptr(cur), nil
		}
		prevPtr = ptr(cur) + lNext
	}
}

// Insert adds (k, v); inserted=false if k is already present (value left
// unchanged, matching STAMP's set semantics).
func (l List) Insert(x tm.Txn, k, v mem.Word) (bool, error) {
	prevPtr, node, err := l.locate(x, k)
	if err != nil {
		return false, err
	}
	if node != mem.Nil {
		key, err := field(x, node, lKey)
		if err != nil {
			return false, err
		}
		if key == k {
			return false, nil
		}
	}
	n, err := l.h.Alloc(lNode)
	if err != nil {
		return false, err
	}
	if err := setField(x, n, lKey, k); err != nil {
		return false, err
	}
	if err := setField(x, n, lVal, v); err != nil {
		return false, err
	}
	if err := setField(x, n, lNext, word(node)); err != nil {
		return false, err
	}
	return true, x.Write(prevPtr, word(n))
}

// Find returns the value stored under k.
func (l List) Find(x tm.Txn, k mem.Word) (mem.Word, bool, error) {
	_, node, err := l.locate(x, k)
	if err != nil || node == mem.Nil {
		return 0, false, err
	}
	key, err := field(x, node, lKey)
	if err != nil || key != k {
		return 0, false, err
	}
	v, err := field(x, node, lVal)
	return v, err == nil, err
}

// Update sets the value under k if present.
func (l List) Update(x tm.Txn, k, v mem.Word) (bool, error) {
	_, node, err := l.locate(x, k)
	if err != nil || node == mem.Nil {
		return false, err
	}
	key, err := field(x, node, lKey)
	if err != nil || key != k {
		return false, err
	}
	return true, setField(x, node, lVal, v)
}

// Remove unlinks k; removed=false if absent. The node is leaked to the
// allocator, as in STAMP's TM-safe free discipline.
func (l List) Remove(x tm.Txn, k mem.Word) (bool, error) {
	prevPtr, node, err := l.locate(x, k)
	if err != nil || node == mem.Nil {
		return false, err
	}
	key, err := field(x, node, lKey)
	if err != nil || key != k {
		return false, err
	}
	next, err := field(x, node, lNext)
	if err != nil {
		return false, err
	}
	return true, x.Write(prevPtr, next)
}

// Len walks the list and returns its length.
func (l List) Len(x tm.Txn) (int, error) {
	n := 0
	cur, err := x.Read(l.head)
	if err != nil {
		return 0, err
	}
	for ptr(cur) != mem.Nil {
		n++
		cur, err = field(x, ptr(cur), lNext)
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// ForEach visits (key, val) pairs in ascending key order. fn returning
// false stops the walk early.
func (l List) ForEach(x tm.Txn, fn func(k, v mem.Word) bool) error {
	cur, err := x.Read(l.head)
	if err != nil {
		return err
	}
	for ptr(cur) != mem.Nil {
		k, err := field(x, ptr(cur), lKey)
		if err != nil {
			return err
		}
		v, err := field(x, ptr(cur), lVal)
		if err != nil {
			return err
		}
		if !fn(k, v) {
			return nil
		}
		cur, err = field(x, ptr(cur), lNext)
		if err != nil {
			return err
		}
	}
	return nil
}
