// Command tmlint statically checks this repository against the
// transactional-memory programming contracts documented in internal/tm.
// It is built purely on the standard library (go/ast, go/types,
// go/importer); the module stays dependency-free.
//
// Usage:
//
//	tmlint [-list] [packages]
//
// Packages are directory patterns relative to the working directory;
// "./..." (the default) walks the whole module. Findings are printed as
//
//	file:line: [pass] message
//
// and the exit status is 1 when any finding is reported, 2 on usage or
// load errors, 0 otherwise. In-package _test.go files are analyzed along
// with their package; external (package foo_test) test files are analyzed
// as their own package; testdata directories are skipped.
//
// A finding is suppressed by a
//
//	//lint:ignore tmlint/<pass> reason
//
// comment on the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rococotm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tmlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "describe the passes and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}

	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}

	failed := false
	findings := 0
	for _, dir := range dirs {
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmlint: %s: %v\n", dir, err)
			failed = true
			continue
		}
		for _, p := range pkgs {
			for _, f := range lint.Check(p) {
				fmt.Println(render(cwd, f))
				findings++
			}
		}
	}
	switch {
	case failed:
		return 2
	case findings > 0:
		return 1
	}
	return 0
}

// render prints a finding with its file path relative to the working
// directory.
func render(cwd string, f lint.Finding) string {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d: [%s] %s", name, f.Pos.Line, f.Pass, f.Message)
}

// expand resolves package patterns to directories containing Go files.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "." || base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") ||
					strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("pattern %q is not a directory", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains buildable .go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}
