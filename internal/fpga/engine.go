// Package fpga is a software model of the paper's FPGA validation engine
// (§4.2, §5.1): the Detector/Manager pipeline that ROCoCoTM reaches through
// asynchronous pull/push queues over the HARP2 CCI link.
//
// The model executes the same dataflow as the RTL, stage by stage:
//
//   - the pull queue delivers a validation request — the transaction's
//     read/write addresses (shipped as addresses, not signatures, so the
//     detector can use exact membership queries and keep false positives
//     down, §5.3) plus its validated snapshot timestamp;
//   - the Detector holds the bookkeeping h₀..h_{W-1} of the last W
//     committed transactions — a read signature, a write signature and the
//     commit sequence each — and computes the transaction's forward and
//     backward dependency vectors f and b against it;
//   - the Manager holds the W×W reachability matrix in 2-D registers and
//     runs the ROCoCo validation (p = f ∨ Rᵀf, s = b ∨ Rb, abort iff
//     p∧s ≠ 0), then commits the transaction into the window;
//   - the push queue returns the verdict.
//
// Verdicts are issued strictly in commit order by a single goroutine, which
// is the software equivalent of the hardware's one-commit-broadcast-per-
// cycle atomicity. A latency/occupancy model (see model.go) accounts the
// cycles a real 200 MHz pipeline and the ~600 ns CCI round trip would cost,
// so the timing harness can charge them without the host actually sleeping.
package fpga

import (
	"fmt"
	"runtime"
	"sync"

	"rococotm/internal/core"
	"rococotm/internal/sig"
)

// Config parameterizes the engine.
type Config struct {
	// W is the sliding-window capacity; 1..64 (the fast-path matrix is one
	// machine word per row). Default core.DefaultW = 64.
	W int
	// Sig is the signature geometry; default sig.Default512.
	Sig sig.Config
	// SigSeed seeds the multiply-shift hash constants. The CPU side must
	// use the same seed for its eager-detection signatures.
	SigSeed uint64
	// QueueDepth is the pull-queue buffering; default 64 (one slot per
	// window entry, like the hardware).
	QueueDepth int
	// CycleLevel selects the cycle-accurate RTL pipeline (rtl.go) as the
	// engine backend instead of the serial behavioral validator. Verdicts
	// are identical (rtl_test.go proves equivalence); the RTL backend
	// additionally exposes pipeline cycle counts and genuinely overlaps
	// concurrent validations.
	CycleLevel bool
	// Model configures the latency/occupancy accounting; zero value uses
	// the HARP2 calibration.
	Model LatencyModel
}

func (c *Config) fill() {
	if c.W == 0 {
		c.W = core.DefaultW
	}
	if c.Sig == (sig.Config{}) {
		c.Sig = sig.Default512
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	c.Model.fill()
}

// Request asks the engine to validate one read-write transaction.
type Request struct {
	// Token is echoed in the verdict (callers use it to sanity-check
	// pairing; the engine is agnostic to its meaning).
	Token uint64
	// ValidTS is the transaction's validated snapshot: commits with
	// sequence < ValidTS were visible to its reads.
	ValidTS uint64
	// ReadAddrs and WriteAddrs are the transaction's footprint.
	ReadAddrs  []uint64
	WriteAddrs []uint64
	// Reply receives exactly one verdict. Must have capacity ≥ 1.
	Reply chan Verdict
}

// Verdict is the engine's decision for one request.
type Verdict struct {
	Token uint64
	// OK means the transaction may commit as sequence Seq.
	OK  bool
	Seq core.Seq
	// Reason is "cycle" or "window" when !OK.
	Reason string
	// ModelNanos is the modeled FPGA residency of this request (pipeline
	// cycles at the configured clock), excluding the CCI round trip.
	ModelNanos uint64
}

// Stats summarizes engine activity.
type Stats struct {
	Requests     uint64
	Commits      uint64
	CycleAborts  uint64
	WindowAborts uint64
	// ModelCycles is the total modeled pipeline occupancy.
	ModelCycles uint64
}

// Engine is the running validation pipeline. Create with Start, shut down
// with Close.
type Engine struct {
	cfg    Config
	hasher *sig.Hasher
	pull   chan Request
	done   chan struct{}

	mu      sync.Mutex // guards state below and serializes direct Process calls
	win     *core.Window
	history []entry // ring: history[i] describes window slot i
	stats   Stats
}

// entry is the detector bookkeeping for one committed transaction: exactly
// what the hardware stores — two signatures per transaction (§5.3), so the
// resource bound is known a priori — plus set cardinalities for the
// empty-set fast path.
type entry struct {
	readSig  sig.Sig
	writeSig sig.Sig
	reads    int
	writes   int
	seq      core.Seq
}

// Start launches the engine goroutine.
func Start(cfg Config) *Engine {
	cfg.fill()
	e := &Engine{
		cfg:    cfg,
		hasher: sig.NewHasher(cfg.Sig, cfg.SigSeed),
		pull:   make(chan Request, cfg.QueueDepth),
		done:   make(chan struct{}),
		win:    core.NewWindow(cfg.W),
	}
	go e.loop()
	return e
}

// Config returns the engine's (filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Hasher returns the signature hasher, which the CPU side shares so both
// sides compute identical signatures.
func (e *Engine) Hasher() *sig.Hasher { return e.hasher }

// Submit enqueues a validation request (the pull queue). It blocks only
// when the queue is full, which models back pressure on the CCI channel.
func (e *Engine) Submit(r Request) error {
	if r.Reply == nil || cap(r.Reply) < 1 {
		return fmt.Errorf("fpga: request needs a buffered reply channel")
	}
	select {
	case <-e.done:
		return fmt.Errorf("fpga: engine closed")
	default:
	}
	select {
	case <-e.done:
		return fmt.Errorf("fpga: engine closed")
	case e.pull <- r:
		return nil
	}
}

// Validate is the synchronous convenience wrapper: submit and wait.
func (e *Engine) Validate(r Request) (Verdict, error) {
	if r.Reply == nil {
		r.Reply = make(chan Verdict, 1)
	}
	if err := e.Submit(r); err != nil {
		return Verdict{}, err
	}
	return <-r.Reply, nil
}

// Close drains and stops the engine.
func (e *Engine) Close() {
	select {
	case <-e.done:
		return
	default:
	}
	close(e.done)
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// BaseSeq returns the oldest tracked commit sequence (for tests).
func (e *Engine) BaseSeq() core.Seq {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.win.BaseSeq()
}

// NextSeq returns the sequence the next commit will receive.
func (e *Engine) NextSeq() core.Seq {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.win.NextSeq()
}

func (e *Engine) loop() {
	if e.cfg.CycleLevel {
		e.loopRTL()
		return
	}
	for {
		select {
		case <-e.done:
			return
		case r := <-e.pull:
			v := e.Process(r)
			r.Reply <- v
		}
	}
}

// loopRTL drives the cycle-level pipeline: requests drain from the pull
// queue into the pipeline as they arrive, overlapping in flight, and the
// model ticks while anything is outstanding.
func (e *Engine) loopRTL() {
	rtl := NewRTL(e.cfg)
	for {
		if rtl.InFlight() == 0 {
			select {
			case <-e.done:
				return
			case r := <-e.pull:
				e.admitRTL(rtl, r)
			}
		}
		// Absorb any further queued requests without blocking, then
		// advance the pipeline one cycle.
		for {
			select {
			case r := <-e.pull:
				e.admitRTL(rtl, r)
				continue
			default:
			}
			break
		}
		before := rtl.Retired()
		rtl.Tick()
		if d := rtl.Retired() - before; d > 0 {
			e.mu.Lock()
			e.stats.Requests += d
			e.mu.Unlock()
		}
		// Let requesters and committers run between cycles (single-CPU
		// hosts would otherwise starve them against this loop).
		runtime.Gosched()
		select {
		case <-e.done:
			return
		default:
		}
	}
}

// admitRTL wraps the caller's reply so engine statistics stay consistent
// with the behavioral backend.
func (e *Engine) admitRTL(rtl *RTL, r Request) {
	inner := r.Reply
	proxy := make(chan Verdict, 1)
	r.Reply = proxy
	if err := rtl.Offer(r); err != nil {
		inner <- Verdict{Token: r.Token, Reason: "cycle"}
		return
	}
	go func() {
		v := <-proxy
		e.mu.Lock()
		switch {
		case v.OK:
			e.stats.Commits++
			e.stats.ModelCycles += e.cfg.Model.requestCycles(len(r.ReadAddrs), len(r.WriteAddrs))
		case v.Reason == "window":
			e.stats.WindowAborts++
		default:
			e.stats.CycleAborts++
		}
		e.mu.Unlock()
		inner <- v
	}()
}

// Process validates one request against the window synchronously. It is
// exported for deterministic unit tests; the runtime path goes through
// Submit and the engine goroutine.
func (e *Engine) Process(r Request) Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Requests++

	cycles := e.cfg.Model.requestCycles(len(r.ReadAddrs), len(r.WriteAddrs))
	e.stats.ModelCycles += cycles
	nanos := e.cfg.Model.cyclesToNanos(cycles)

	// Window-overflow rule (§4.2): if unseen commits have already been
	// evicted, the transaction neglects updates of t_{k-W} and must abort.
	if e.win.Count() > 0 && core.Seq(r.ValidTS) < e.win.BaseSeq() {
		e.stats.WindowAborts++
		return Verdict{Token: r.Token, Reason: "window", ModelNanos: nanos}
	}

	// Detector: build the transaction's signatures once, then derive the
	// f/b adjacency vectors against each history entry.
	rs := sig.New(e.cfg.Sig)
	ws := sig.New(e.cfg.Sig)
	for _, a := range r.ReadAddrs {
		rs.Insert(e.hasher, a)
	}
	for _, a := range r.WriteAddrs {
		ws.Insert(e.hasher, a)
	}

	var f, b uint64
	for i := 0; i < e.win.Count(); i++ {
		h := &e.history[i]
		seen := h.seq < core.Seq(r.ValidTS)
		if seen {
			// Any dependence with a visible commit points backward.
			if e.overlap(r.ReadAddrs, rs, h.writeSig, h.writes) ||
				e.overlap(r.WriteAddrs, ws, h.readSig, h.reads) ||
				e.overlap(r.WriteAddrs, ws, h.writeSig, h.writes) {
				b |= 1 << uint(i)
			}
			continue
		}
		// Unseen commit: a stale read orders the transaction before it
		// (forward edge); WAR/WAW order it after (backward edge).
		if e.overlap(r.ReadAddrs, rs, h.writeSig, h.writes) {
			f |= 1 << uint(i)
		}
		if e.overlap(r.WriteAddrs, ws, h.readSig, h.reads) ||
			e.overlap(r.WriteAddrs, ws, h.writeSig, h.writes) {
			b |= 1 << uint(i)
		}
	}

	// Manager: ROCoCo reachability validation and commit.
	seq, ok := e.win.Insert(f, b)
	if !ok {
		e.stats.CycleAborts++
		return Verdict{Token: r.Token, Reason: "cycle", ModelNanos: nanos}
	}
	// Bookkeep the new commit; slide the history ring with the window.
	ent := entry{
		readSig: rs, writeSig: ws,
		reads: len(r.ReadAddrs), writes: len(r.WriteAddrs),
		seq: seq,
	}
	if len(e.history) == e.cfg.W {
		copy(e.history, e.history[1:])
		e.history[len(e.history)-1] = ent
	} else {
		e.history = append(e.history, ent)
	}
	e.stats.Commits++
	return Verdict{Token: r.Token, OK: true, Seq: seq, ModelNanos: nanos}
}

// overlap reports whether the transaction's address set (with its
// signature) may intersect a history entry's set: a cheap signature
// intersection first, refined by per-address membership queries against
// the history signature on a hit — the paper's rationale for shipping
// addresses (not signatures) to the FPGA (§5.3). Residual false positives
// are those of the query operation, far below intersection's.
func (e *Engine) overlap(addrs []uint64, s sig.Sig, hist sig.Sig, histCount int) bool {
	if len(addrs) == 0 || histCount == 0 {
		return false
	}
	if !s.Intersects(hist) {
		return false
	}
	for _, a := range addrs {
		if hist.Query(e.hasher, a) {
			return true
		}
	}
	return false
}
