// Package sitm is a multi-version snapshot-isolation STM — the semantics
// the paper's §2 ranks below serializability ("provided by almost all
// databases and some TMs" because SI is compositional and cheap to
// enforce). It exists as the executable counterpart of Figure 1: under
// sitm two transactions can commit a write skew that every serializable
// runtime in this repository rejects, which the test suite demonstrates.
//
// Design: a global version clock; per-address version chains kept outside
// the word heap (the heap itself always holds the latest committed value,
// so non-transactional readers and the tmds structures keep working); a
// transaction reads the newest version ≤ its snapshot and buffers writes;
// commit takes the first-committer-wins check — any written address with a
// version newer than the snapshot aborts the transaction — then installs
// all writes at a fresh timestamp under a short critical section.
package sitm

import (
	"sync"

	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// version is one committed value of an address.
type version struct {
	ts  uint64
	val mem.Word
}

// Config parameterizes the runtime.
type Config struct {
	// GCKeep bounds the version-chain length per address (older versions
	// beyond the newest GCKeep are dropped; a reader with an older
	// snapshot aborts). Default 64.
	GCKeep int
}

func (c *Config) fill() {
	if c.GCKeep == 0 {
		c.GCKeep = 64
	}
}

// TM is the snapshot-isolation runtime.
type TM struct {
	heap *mem.Heap
	cfg  Config

	mu       sync.Mutex // guards clock and chains on the commit path
	clock    uint64
	chains   map[mem.Addr][]version // committed versions, oldest first
	chainsMu sync.RWMutex           // guards the chains map for readers

	cnt tm.Counters
}

// New returns an SI runtime over heap.
func New(heap *mem.Heap, cfg Config) *TM {
	cfg.fill()
	return &TM{heap: heap, cfg: cfg, chains: map[mem.Addr][]version{}}
}

// Name implements tm.TM.
func (s *TM) Name() string { return "si" }

// Heap implements tm.TM.
func (s *TM) Heap() *mem.Heap { return s.heap }

// Stats implements tm.TM.
func (s *TM) Stats() tm.Stats { return s.cnt.Snapshot() }

// Close implements tm.TM.
func (s *TM) Close() {}

type txn struct {
	s      *TM
	snap   uint64
	redo   map[mem.Addr]mem.Word
	worder []mem.Addr
	dead   bool
}

// Begin implements tm.TM.
func (s *TM) Begin(int) (tm.Txn, error) {
	s.cnt.OnStart()
	s.mu.Lock()
	snap := s.clock
	s.mu.Unlock()
	return &txn{s: s, snap: snap, redo: map[mem.Addr]mem.Word{}}, nil
}

// Read implements tm.Txn: newest version ≤ snapshot.
func (x *txn) Read(a mem.Addr) (mem.Word, error) {
	if x.dead {
		return 0, tm.Abort(tm.ReasonConflict)
	}
	if v, ok := x.redo[a]; ok {
		return v, nil
	}
	x.s.chainsMu.RLock()
	chain := x.s.chains[a]
	// Walk from the newest version down to the snapshot.
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].ts <= x.snap {
			v := chain[i].val
			x.s.chainsMu.RUnlock()
			return v, nil
		}
	}
	gcTruncated := len(chain) > 0 // all tracked versions are newer
	x.s.chainsMu.RUnlock()
	if gcTruncated {
		// The snapshot predates the retained chain: abort (GC window).
		x.dead = true
		x.s.cnt.OnAbort(tm.ReasonWindow)
		return 0, tm.Abort(tm.ReasonWindow)
	}
	// Never written transactionally: the heap value is the initial
	// version (timestamp 0 ≤ any snapshot).
	return x.s.heap.Load(a), nil
}

// Write implements tm.Txn: buffered.
func (x *txn) Write(a mem.Addr, v mem.Word) error {
	if x.dead {
		return tm.Abort(tm.ReasonConflict)
	}
	if _, seen := x.redo[a]; !seen {
		x.worder = append(x.worder, a)
	}
	x.redo[a] = v
	return nil
}

// Commit implements tm.TM: first-committer-wins, then install.
func (s *TM) Commit(t tm.Txn) error {
	x := t.(*txn)
	if x.dead {
		return tm.Abort(tm.ReasonConflict)
	}
	x.dead = true
	if len(x.redo) == 0 {
		s.cnt.OnCommit(true)
		return nil
	}
	s.mu.Lock()
	// First-committer-wins: a write set that intersects any version newer
	// than the snapshot loses.
	s.chainsMu.RLock()
	for _, a := range x.worder {
		chain := s.chains[a]
		if len(chain) > 0 && chain[len(chain)-1].ts > x.snap {
			s.chainsMu.RUnlock()
			s.mu.Unlock()
			s.cnt.OnAbort(tm.ReasonConflict)
			return tm.Abort(tm.ReasonConflict)
		}
	}
	s.chainsMu.RUnlock()
	s.clock++
	ts := s.clock
	s.chainsMu.Lock()
	for _, a := range x.worder {
		chain := append(s.chains[a], version{ts: ts, val: x.redo[a]})
		if len(chain) > s.cfg.GCKeep {
			chain = append([]version(nil), chain[len(chain)-s.cfg.GCKeep:]...)
		}
		s.chains[a] = chain
		s.heap.Store(a, x.redo[a]) // latest value mirrored in the heap
	}
	s.chainsMu.Unlock()
	s.mu.Unlock()
	s.cnt.OnCommit(false)
	return nil
}

// Abort implements tm.TM.
func (s *TM) Abort(t tm.Txn) {
	x := t.(*txn)
	if !x.dead {
		x.dead = true
		s.cnt.OnAbort(tm.ReasonExplicit)
	}
}

var _ tm.TM = (*TM)(nil)
