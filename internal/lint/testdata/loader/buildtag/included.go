// Package buildtag checks constraint handling: this file is always
// compiled; excluded.go declares the same symbol behind an unsatisfiable
// tag, so the package only type-checks if the loader drops that file.
package buildtag

func Answer() int {
	return 42
}
