package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runDeadTxn enforces the "dead after abort" rule of internal/tm: once a
// Txn method has returned an AbortError, the transaction is rolled back
// and the only valid step is to stop using it. The pass tracks, per
// function and flow-sensitively along statement lists, error variables
// assigned from Txn.Read/Txn.Write/TM.Commit together with the
// transaction they came from. Inside a branch that observes the abort —
//
//	if err != nil { ... }
//	if _, ok := tm.IsAbort(err); ok { ... }
//
// — any further Read/Write on that same transaction, or Commit of it, is
// reported. Using a different transaction, or the same one on the
// not-taken path (after the guard returned), is fine.
func runDeadTxn(p *Package) []Finding {
	api := resolveTM(p)
	if api == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body := funcBody(n)
			if body == nil {
				return true
			}
			d := &deadTxn{p: p, api: api}
			d.scanBlock(body.List, map[types.Object]txnSource{})
			out = append(out, d.findings...)
			return true // nested literals get their own scan of outer bindings
		})
	}
	return dedupe(out)
}

// txnSource records which transaction produced the error held by a
// variable.
type txnSource struct {
	recvObj types.Object // root object of the receiver expression
	recvStr string       // receiver path, e.g. "x" or "t.inner"
	kind    riskyKind
}

type deadTxn struct {
	p        *Package
	api      *tmAPI
	findings []Finding
}

// scanBlock walks one statement list, threading error→txn bindings.
func (d *deadTxn) scanBlock(stmts []ast.Stmt, bind map[types.Object]txnSource) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			d.recordAssign(s, bind)
		case *ast.IfStmt:
			local := copyBind(bind)
			if s.Init != nil {
				if as, ok := s.Init.(*ast.AssignStmt); ok {
					d.recordAssign(as, local)
				}
			}
			if src, ok := d.abortObserved(s, local); ok {
				d.checkDeadUses(s.Body, src)
			}
			d.scanBlock(s.Body.List, copyBind(local))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				d.scanBlock(e.List, copyBind(local))
			case *ast.IfStmt:
				d.scanBlock([]ast.Stmt{e}, copyBind(local))
			}
		case *ast.BlockStmt:
			d.scanBlock(s.List, copyBind(bind))
		case *ast.ForStmt:
			d.scanBlock(s.Body.List, copyBind(bind))
		case *ast.RangeStmt:
			d.scanBlock(s.Body.List, copyBind(bind))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					d.scanBlock(cc.Body, copyBind(bind))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					d.scanBlock(cc.Body, copyBind(bind))
				}
			}
		}
	}
}

// recordAssign binds err variables to the transaction that produced them,
// and clears bindings clobbered by unrelated assignments.
func (d *deadTxn) recordAssign(as *ast.AssignStmt, bind map[types.Object]txnSource) {
	// Any assignment to a tracked variable invalidates its binding first.
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := objOf(d.p.Info, id); obj != nil {
				delete(bind, obj)
			}
		}
	}
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	kind, recv := d.api.classify(d.p.Info, call)
	if recv == nil {
		return
	}
	var txnExpr ast.Expr
	switch kind {
	case kindRead, kindWrite:
		txnExpr = recv
	case kindCommit:
		if len(call.Args) == 1 {
			txnExpr = call.Args[0] // the transaction being committed
		}
	default:
		return
	}
	root, path := lvalPath(txnExpr)
	if root == nil {
		return
	}
	idx := errResultIndex(d.p.Info, call)
	if idx < 0 || idx >= len(as.Lhs) {
		return
	}
	errID, ok := ast.Unparen(as.Lhs[idx]).(*ast.Ident)
	if !ok || errID.Name == "_" {
		return
	}
	obj := objOf(d.p.Info, errID)
	if obj == nil {
		return
	}
	bind[obj] = txnSource{recvObj: objOf(d.p.Info, root), recvStr: path, kind: kind}
}

// abortObserved reports whether the if statement observes an abort on a
// tracked error: `err != nil` or `_, ok := tm.IsAbort(err); ok`.
func (d *deadTxn) abortObserved(s *ast.IfStmt, bind map[types.Object]txnSource) (txnSource, bool) {
	// if err != nil (possibly conjoined with more conditions)
	if src, ok := d.nilCheck(s.Cond, bind); ok {
		return src, true
	}
	// if _, ok := tm.IsAbort(err); ok
	if as, isAssign := s.Init.(*ast.AssignStmt); isAssign && len(as.Rhs) == 1 {
		if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall &&
			d.api.isIsAbortCall(d.p.Info, call) && len(call.Args) == 1 {
			if errID, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if src, tracked := bind[objOf(d.p.Info, errID)]; tracked {
					if condIsOKIdent(d.p, s.Cond, as) {
						return src, true
					}
				}
			}
		}
	}
	return txnSource{}, false
}

// nilCheck matches `err != nil` anywhere in a && chain of cond.
func (d *deadTxn) nilCheck(cond ast.Expr, bind map[types.Object]txnSource) (txnSource, bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			if src, ok := d.nilCheck(e.X, bind); ok {
				return src, true
			}
			return d.nilCheck(e.Y, bind)
		}
		if e.Op != token.NEQ {
			return txnSource{}, false
		}
		x, y := e.X, e.Y
		if isNilIdent(d.p.Info, x) {
			x, y = y, x
		}
		if !isNilIdent(d.p.Info, y) {
			return txnSource{}, false
		}
		if id, ok := ast.Unparen(x).(*ast.Ident); ok {
			if src, tracked := bind[objOf(d.p.Info, id)]; tracked {
				return src, true
			}
		}
	}
	return txnSource{}, false
}

// condIsOKIdent reports whether cond is exactly the bool defined by the
// init statement (the `ok` of IsAbort).
func condIsOKIdent(p *Package, cond ast.Expr, init *ast.AssignStmt) bool {
	id, ok := ast.Unparen(cond).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(p.Info, id)
	if obj == nil {
		return false
	}
	for _, lhs := range init.Lhs {
		if lid, isID := ast.Unparen(lhs).(*ast.Ident); isID && objOf(p.Info, lid) == obj {
			return true
		}
	}
	return false
}

// checkDeadUses reports Txn method calls on the aborted transaction inside
// the abort-observed branch.
func (d *deadTxn) checkDeadUses(body *ast.BlockStmt, src txnSource) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a nested closure runs who-knows-when; out of scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, recv := d.api.classify(d.p.Info, call)
		var used ast.Expr
		switch kind {
		case kindRead, kindWrite:
			used = recv
		case kindCommit:
			if len(call.Args) == 1 {
				used = call.Args[0]
			}
		default:
			return true
		}
		root, path := lvalPath(used)
		if root == nil || path != src.recvStr || objOf(d.p.Info, root) != src.recvObj {
			return true
		}
		d.findings = append(d.findings, Finding{
			Pos:  d.p.Fset.Position(call.Pos()),
			Pass: "deadtxn",
			Message: fmt.Sprintf(
				"%s called on transaction %s after an abort from %s was observed; the transaction is dead",
				kind, path, src.kind),
		})
		return true
	})
}

// copyBind clones a binding map for branch-local flow.
func copyBind(m map[types.Object]txnSource) map[types.Object]txnSource {
	out := make(map[types.Object]txnSource, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// dedupe drops findings duplicated by nested scans.
func dedupe(in []Finding) []Finding {
	seen := map[string]bool{}
	var out []Finding
	for _, f := range in {
		k := f.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}
