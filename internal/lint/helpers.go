package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// buildParents maps every node in f to its parent, so passes can walk
// upward from an expression to its statement and enclosing function.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n
// (exclusive of n itself), or nil.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return cur
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// lvalPath flattens an assignable expression into a dotted path rooted at
// an identifier: "x", "rec.reads", "t.inner". Index expressions collapse
// onto their base ("s[i]" → "s"). It returns the root identifier and ""
// when the expression is not a simple path.
func lvalPath(e ast.Expr) (root *ast.Ident, path string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e, e.Name
	case *ast.SelectorExpr:
		root, base := lvalPath(e.X)
		if root == nil {
			return nil, ""
		}
		return root, base + "." + e.Sel.Name
	case *ast.IndexExpr:
		return lvalPath(e.X)
	case *ast.StarExpr:
		return lvalPath(e.X)
	}
	return nil, ""
}

// exprMentions reports whether expr references obj anywhere.
func exprMentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// objOf resolves an identifier to its object, whether it is a use or a
// definition site.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && objOf(info, id) == types.Universe.Lookup("nil")
}

// terminatorNames are call targets that stop the error path: the process
// exits, the test fails, or control never returns.
var terminatorNames = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"FailNow": true, "SkipNow": true, "Skip": true, "Skipf": true,
	"Exit": true, "Goexit": true,
	"fatal": true, "fatalf": true,
}

// pathTerminates reports whether the statement list contains (outside any
// nested function literal) a statement that leaves the enclosing function
// or process: return, goto, break, continue, panic, or a fatal/exit-style
// call.
func pathTerminates(stmts []ast.Stmt) bool {
	term := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt, *ast.BranchStmt:
				term = true
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					if fun.Name == "panic" || terminatorNames[fun.Name] {
						term = true
					}
				case *ast.SelectorExpr:
					if terminatorNames[fun.Sel.Name] {
						term = true
					}
				}
			}
			return !term
		})
		if term {
			return true
		}
	}
	return false
}
