// Package seqlock exercises the seqlock pass: version-stamped slots whose
// writers must bracket data with odd/even version stores and whose
// readers must re-check the version after copying.
package seqlock

import "sync/atomic"

type slot struct {
	ver atomic.Uint64
	lo  atomic.Uint64
	hi  atomic.Uint64
}

// publish is the canonical writer: odd store, data, even successor.
func publish(s *slot, seq, lo, hi uint64) {
	s.ver.Store(2*seq + 1)
	s.lo.Store(lo)
	s.hi.Store(hi)
	s.ver.Store(2*seq + 2)
}

// publishTorn stores the version once; readers cannot tell the data was
// in flux while it was written.
func publishTorn(s *slot, seq, lo uint64) {
	s.ver.Store(2*seq + 2) // want `\[seqlock\] writer of seqlock slot s stores the version once`
	s.lo.Store(lo)
}

// publishEvenFirst enters with an even store, so a concurrent reader sees
// a stable-looking version while the data is mid-write.
func publishEvenFirst(s *slot, seq, lo uint64) {
	s.ver.Store(2 * seq) // want `\[seqlock\] first version store of seqlock slot s is even`
	s.lo.Store(lo)
	s.ver.Store(2*seq + 2)
}

// publishStuck never restores even parity: the slot reads as in-flux
// forever.
func publishStuck(s *slot, seq, lo uint64) {
	s.ver.Store(2*seq + 1)
	s.lo.Store(lo)
	s.ver.Store(2*seq + 3) // want `\[seqlock\] final version store of seqlock slot s is odd`
}

// publishLeak writes data after closing the bracket.
func publishLeak(s *slot, seq, lo, hi uint64) {
	s.ver.Store(2*seq + 1)
	s.lo.Store(lo)
	s.ver.Store(2*seq + 2)
	s.hi.Store(hi) // want `\[seqlock\] data write to seqlock slot s lands outside the version bracket`
}

// read is the canonical reader: load version, copy data, re-check.
func read(s *slot) (uint64, uint64, bool) {
	v1 := s.ver.Load()
	if v1&1 == 1 {
		return 0, 0, false
	}
	lo := s.lo.Load()
	hi := s.hi.Load()
	if s.ver.Load() != v1 {
		return 0, 0, false
	}
	return lo, hi, true
}

// readTorn copies the data but never re-validates the copy.
func readTorn(s *slot) (uint64, uint64) {
	_ = s.ver.Load()
	lo := s.lo.Load()
	return lo, s.hi.Load() // want `\[seqlock\] seqlock read of slot s is never re-checked against the version`
}

// readEager touches the data before it knows which version it is reading.
func readEager(s *slot) (uint64, bool) {
	lo := s.lo.Load() // want `\[seqlock\] data of seqlock slot s is read before the version is loaded`
	v := s.ver.Load()
	if s.ver.Load() != v {
		return 0, false
	}
	return lo, true
}

// fold reads child data without consulting their versions at all — the
// aggregate-publisher shape, synchronized by other means; out of scope.
func fold(children []slot) uint64 {
	var acc uint64
	for i := range children {
		acc += children[i].lo.Load()
	}
	return acc
}

// newSlot initializes data with no version store in sight: construction,
// not publication; the writer rule only fires once the version is stored.
func newSlot() *slot {
	s := &slot{}
	s.lo.Store(1)
	return s
}

// statsPeek accepts a possibly-torn read for metrics.
func statsPeek(s *slot) uint64 {
	_ = s.ver.Load()
	//lint:ignore tmlint/seqlock metrics-only peek, tearing is harmless
	return s.lo.Load()
}
