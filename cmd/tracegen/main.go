// Command tracegen generates the synthetic micro-benchmark traces of §6.1
// and optionally replays them through the concurrency-control algorithms,
// printing either the trace itself (one transaction per line) or the
// abort-rate summary.
//
// Usage:
//
//	tracegen -n 8 -locations 1024 -count 1000 -seed 7          # print trace
//	tracegen -n 8 -count 1000 -replay -t 16                     # replay
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rococotm/internal/occ"
	"rococotm/internal/trace"
)

func main() {
	locations := flag.Int("locations", 1024, "shared array size")
	n := flag.Int("n", 8, "locations accessed per transaction")
	count := flag.Int("count", 1000, "transactions")
	readFrac := flag.Float64("readfrac", 0.5, "probability an access is a read")
	seed := flag.Int64("seed", 1, "generator seed")
	replay := flag.Bool("replay", false, "replay through CC algorithms instead of printing")
	t := flag.Int("t", 16, "visibility window (concurrent transactions) for -replay")
	window := flag.Int("window", 64, "ROCoCo window size for -replay")
	flag.Parse()

	cfg := trace.Config{
		Locations: *locations, N: *n, Count: *count,
		ReadFrac: *readFrac, Seed: *seed,
	}
	txns, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if !*replay {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintf(w, "# locations=%d n=%d count=%d readfrac=%g seed=%d collision=%.4f\n",
			cfg.Locations, cfg.N, cfg.Count, cfg.ReadFrac, cfg.Seed, cfg.CollisionRate())
		for _, tx := range txns {
			fmt.Fprintf(w, "T%d R%v W%v\n", tx.ID, tx.Reads, tx.Writes)
		}
		return
	}

	fmt.Printf("collision rate (model) %.2f%%, T=%d\n", 100*cfg.CollisionRate(), *t)
	for _, alg := range []occ.Algorithm{occ.TwoPL{}, occ.TOCC{}, occ.BOCC{}, occ.FOCC{}, occ.NewROCoCo(*window)} {
		res, _ := occ.Replay(alg, txns, *t)
		fmt.Printf("%-8s abort rate %6.2f%%  (commits %d, aborts %d", alg.Name(),
			100*res.AbortRate(), res.Commits, res.Aborts)
		for reason, cnt := range res.Reasons {
			if cnt > 0 {
				fmt.Printf(", %s=%d", reason, cnt)
			}
		}
		fmt.Println(")")
	}
}
