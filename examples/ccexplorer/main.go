// ccexplorer: an interactive tour of the paper's semantics and
// concurrency-control results. Part one runs the motivating histories of
// Figures 1 and 2 through the axiom-based semantics checkers (§3); part
// two replays a synthetic trace sweep through 2PL, TOCC, BOCC and ROCoCo
// and prints the abort-rate comparison of Figure 9.
//
//	go run ./examples/ccexplorer
package main

import (
	"fmt"

	"rococotm/internal/occ"
	"rococotm/internal/semantics"
	"rococotm/internal/trace"
)

func main() {
	fmt.Println("== Part 1: axiom-based semantics on the paper's examples ==")
	fmt.Println()
	check := func(name string, h semantics.History, note string) {
		si, _ := h.SnapshotIsolation()
		ser, order, _ := h.Serializable()
		strict, _, _ := h.StrictSerializable()
		tocc, _ := h.CommitOrderConsistent()
		fmt.Printf("%-22s SI=%-5v serializable=%-5v strict=%-5v TOCC-admits=%-5v",
			name, si, ser, strict, tocc)
		if ser {
			fmt.Printf("  serial order %v", order)
		}
		fmt.Println()
		fmt.Printf("%22s %s\n\n", "", note)
	}
	check("Figure 1 (write skew)", semantics.Fig1WriteSkew(),
		"SI admits it, serializability must not: the anomaly that makes SI too weak.")
	check("Figure 2(a)", semantics.Fig2a(),
		"Fine under commit-time stamps; start-time stamps would abort t1.")
	check("Figure 2(b)", semantics.Fig2b(),
		"Serializable as t2,t3,t1 — but commit-order timestamps (TOCC/LSA) reject it. ROCoCo commits it.")

	fmt.Println("== Part 2: abort rates of the CC algorithms (Figure 9, T=16) ==")
	fmt.Println()
	fmt.Printf("%3s %9s  %8s %8s %8s %8s\n", "N", "collision", "2PL", "TOCC", "BOCC", "ROCoCo")
	for _, n := range []int{4, 8, 12, 16, 20, 24, 28, 32} {
		cfg := trace.Config{Locations: 1024, N: n, Count: 1500, ReadFrac: 0.5, Seed: 7}
		txns, err := trace.Generate(cfg)
		if err != nil {
			panic(err)
		}
		r2, _ := occ.Replay(occ.TwoPL{}, txns, 16)
		rt, _ := occ.Replay(occ.TOCC{}, txns, 16)
		rb, _ := occ.Replay(occ.BOCC{}, txns, 16)
		rr, _ := occ.Replay(occ.NewROCoCo(64), txns, 16)
		fmt.Printf("%3d %8.1f%%  %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			n, 100*cfg.CollisionRate(),
			100*r2.AbortRate(), 100*rt.AbortRate(), 100*rb.AbortRate(), 100*rr.AbortRate())
	}
	fmt.Println("\nROCoCo tracks reachability instead of timestamps, so it only aborts")
	fmt.Println("transactions that close real dependency cycles — the phantom orderings")
	fmt.Println("TOCC pays for are exactly the gap between the last two columns.")
}
