package rococotm

import (
	"runtime"
	"testing"

	"rococotm/internal/audit"
	"rococotm/internal/mem"
	"rococotm/internal/tm"
)

// fastHarness drives PublishFast by hand, playing the hybrid fast path's
// role: acquire ownership, BeginApply, store eagerly, publish, release.
type fastHarness struct {
	r    *TM
	lt   *mem.LineTable
	heap *mem.Heap
}

// publish runs one manual fast commit writing 42 into a and reading b.
func (fh *fastHarness) publish(t *testing.T, a, b mem.Addr, val mem.Word) error {
	t.Helper()
	la, lb := mem.LineOf(a), mem.LineOf(b)
	vb := fh.lt.Version(lb)
	own := fh.lt.Own(la)
	s := own.Load()
	if mem.LineWriterOf(s) != -1 {
		t.Fatalf("line %d already owned", la)
	}
	if !own.CompareAndSwap(s, mem.LineWithWriter(s, 0)) {
		t.Fatal("ownership CAS failed")
	}
	fh.lt.BeginApply(la)
	old := fh.heap.Load(a)
	fh.heap.Store(a, val)
	err := fh.r.PublishFast(&FastFootprint{
		Thread:       0,
		ReadAddrs:    []uint64{uint64(b)},
		WriteAddrs64: []uint64{uint64(a)},
		WriteOrder:   []mem.Addr{a},
		NewVals:      []mem.Word{val},
		OldVals:      []mem.Word{old},
		ReadLines:    []uint64{lb},
		ReadVers:     []uint64{vb},
	})
	fh.lt.EndApply(la)
	for {
		s := own.Load()
		if own.CompareAndSwap(s, mem.LineWithWriter(s, -1)) {
			break
		}
	}
	return err
}

// TestPublishFastOrdering pins the merged commit order: fast publications
// claim engine sequences, interleave with slow commits, appear in the
// observer stream, and finalize the heap on both outcomes.
func TestPublishFastOrdering(t *testing.T) {
	heap := mem.NewHeap(1 << 10)
	lt := mem.NewLineTable(heap.Cap())
	auditor := audit.New(audit.Config{})
	r := New(heap, Config{MaxThreads: 2, LineTable: lt, Observer: auditor})
	defer r.Close()
	base := heap.MustAlloc(16)
	a, b := base, base+8 // distinct lines
	fh := &fastHarness{r: r, lt: lt, heap: heap}

	// Fast commit 0: write a=42, read b.
	if err := fh.publish(t, a, b, 42); err != nil {
		t.Fatalf("fast publish: %v", err)
	}
	if got := heap.Load(a); got != 42 {
		t.Fatalf("heap[a] = %d, want 42", got)
	}
	if ts := r.GlobalTS(); ts != 1 {
		t.Fatalf("GlobalTS = %d, want 1", ts)
	}

	// Slow commit 1 on top: reads the fast value, writes b.
	x, err := r.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := x.Read(a); err != nil || v != 42 {
		t.Fatalf("slow read of fast commit = %d, %v", v, err)
	}
	if err := x.Write(b, 7); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(x); err != nil {
		t.Fatalf("slow commit: %v", err)
	}
	if ts := r.GlobalTS(); ts != 2 {
		t.Fatalf("GlobalTS = %d, want 2", ts)
	}

	// Fast publication 2 fails: its recorded read version of b is stale
	// (the slow write-back bumped the line). The sequence is consumed with
	// an empty record and the eager store rolls back.
	lb := mem.LineOf(b)
	for lt.Version(lb) == 0 {
		// The slow write-back is decoupled; wait for its bump to land.
		runtime.Gosched()
	}
	err = fh.publishStale(t, a, b, 99)
	if code, ok := tm.CodeOf(err); !ok || code != tm.CodeConflict {
		t.Fatalf("stale publish err = %v, want CodeConflict", err)
	}
	if got := heap.Load(a); got != 42 {
		t.Fatalf("heap[a] after failed publish = %d, want 42 (restored)", got)
	}
	if ts := r.GlobalTS(); ts != 3 {
		t.Fatalf("GlobalTS = %d, want 3 (failed publication consumes the seq)", ts)
	}

	if err := auditor.Err(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
	if st := auditor.Stats(); st.Observed != 3 {
		t.Fatalf("auditor observed %d commits, want 3", st.Observed)
	}
}

// publishStale is publish with a deliberately stale recorded read version.
func (fh *fastHarness) publishStale(t *testing.T, a, b mem.Addr, val mem.Word) error {
	t.Helper()
	la, lb := mem.LineOf(a), mem.LineOf(b)
	own := fh.lt.Own(la)
	s := own.Load()
	if !own.CompareAndSwap(s, mem.LineWithWriter(s, 0)) {
		t.Fatal("ownership CAS failed")
	}
	fh.lt.BeginApply(la)
	old := fh.heap.Load(a)
	fh.heap.Store(a, val)
	err := fh.r.PublishFast(&FastFootprint{
		Thread:       0,
		ReadAddrs:    []uint64{uint64(b)},
		WriteAddrs64: []uint64{uint64(a)},
		WriteOrder:   []mem.Addr{a},
		NewVals:      []mem.Word{val},
		OldVals:      []mem.Word{old},
		ReadLines:    []uint64{lb},
		ReadVers:     []uint64{fh.lt.Version(lb) - 2}, // stale by one cycle
	})
	fh.lt.EndApply(la)
	for {
		s := own.Load()
		if own.CompareAndSwap(s, mem.LineWithWriter(s, -1)) {
			break
		}
	}
	return err
}

// TestPublishFastIrrevocableGate: a pending irrevocable turn refuses fast
// publications with CodeFallback and restores the eager store.
func TestPublishFastIrrevocableGate(t *testing.T) {
	heap := mem.NewHeap(1 << 10)
	lt := mem.NewLineTable(heap.Cap())
	r := New(heap, Config{MaxThreads: 2, LineTable: lt})
	defer r.Close()
	base := heap.MustAlloc(16)
	a, b := base, base+8
	fh := &fastHarness{r: r, lt: lt, heap: heap}

	r.gate.Lock() // stand in for an irrevocable holder
	r.irrevPending.Add(1)
	if !r.IrrevocablePending() {
		t.Fatal("IrrevocablePending = false under a held gate")
	}
	err := fh.publish(t, a, b, 42)
	r.irrevPending.Add(-1)
	r.gate.Unlock()
	if code, ok := tm.CodeOf(err); !ok || code != tm.CodeFallback {
		t.Fatalf("gated publish err = %v, want CodeFallback", err)
	}
	if got := heap.Load(a); got != 0 {
		t.Fatalf("heap[a] = %d, want 0 (restored)", got)
	}
	if ts := r.GlobalTS(); ts != 0 {
		t.Fatalf("GlobalTS = %d, want 0 (no sequence consumed)", ts)
	}
}

// TestPublishFastDoom: a doomed thread's publication fails at the turn
// even when its reads validate.
func TestPublishFastDoom(t *testing.T) {
	heap := mem.NewHeap(1 << 10)
	lt := mem.NewLineTable(heap.Cap())
	r := New(heap, Config{MaxThreads: 2, LineTable: lt})
	defer r.Close()
	base := heap.MustAlloc(16)
	a, b := base, base+8
	fh := &fastHarness{r: r, lt: lt, heap: heap}

	r.fastDoomed[0].Store(1)
	err := fh.publish(t, a, b, 42)
	if code, ok := tm.CodeOf(err); !ok || code != tm.CodeConflict {
		t.Fatalf("doomed publish err = %v, want CodeConflict", err)
	}
	if got := heap.Load(a); got != 0 {
		t.Fatalf("heap[a] = %d, want 0 (restored)", got)
	}
	if ts := r.GlobalTS(); ts != 1 {
		t.Fatalf("GlobalTS = %d, want 1 (sequence consumed by empty record)", ts)
	}
	r.ClearFastDoom(0)
	if r.FastDoomed(0) {
		t.Fatal("doom flag survived ClearFastDoom")
	}
}

// TestLineTableConfigGates pins the unsupported-combination panics.
func TestLineTableConfigGates(t *testing.T) {
	heap := mem.NewHeap(1 << 10)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"ordered", Config{OrderedWriteback: true}},
		{"short", Config{}},
	} {
		cfg := tc.cfg
		if tc.name == "short" {
			cfg.LineTable = mem.NewLineTable(8) // too few lines
		} else {
			cfg.LineTable = mem.NewLineTable(heap.Cap())
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", tc.name)
				}
			}()
			New(heap, cfg).Close()
		}()
	}
}

// TestPublishFastWithoutLineTable pins the misuse panic.
func TestPublishFastWithoutLineTable(t *testing.T) {
	heap := mem.NewHeap(1 << 10)
	r := New(heap, Config{MaxThreads: 1})
	defer r.Close()
	defer func() {
		if recover() == nil {
			t.Error("PublishFast without LineTable did not panic")
		}
	}()
	_ = r.PublishFast(&FastFootprint{})
}
